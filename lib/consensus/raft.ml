module ISet = Set.Make (Int)
module Trace = Massbft_trace.Trace

type role = Leader | Follower | Candidate

let role_name = function
  | Leader -> "leader"
  | Follower -> "follower"
  | Candidate -> "candidate"

type 'p msg =
  | Append of { term : int; index : int; entry : 'p }
  | Append_ack of { term : int; index : int }
  | Commit_note of { term : int; index : int }
  | Request_vote of { term : int; last_index : int }
  | Vote of { term : int; granted : bool }
  | Probe of { term : int }
  | Probe_reply of { term : int; last_index : int; commit_index : int }
  | Timeout_now of { term : int }
  | Replace of { term : int; index : int; entry : 'p }

type 'p callbacks = {
  send : int -> 'p msg -> unit;
  on_deliver : index:int -> 'p -> unit;
  on_commit : index:int -> 'p -> unit;
  on_role : role -> term:int -> unit;
  ack_guard : index:int -> 'p -> (unit -> unit) -> unit;
}

type 'p t = {
  ng : int;
  me : int;
  preferred : int option;  (* deployment-preferred leader of this instance *)
  cb : 'p callbacks;
  mutable cur_term : int;
  mutable cur_role : role;
  mutable voted_for : int option;  (* in cur_term *)
  mutable votes : ISet.t;  (* granted votes when candidate *)
  log : (int, 'p * int) Hashtbl.t;  (* 1-indexed; payload with its term *)
  mutable last_idx : int;  (* highest contiguous index stored *)
  mutable commit_idx : int;
  mutable delivered_idx : int;  (* highest index passed to on_deliver *)
  pending : (int, 'p * int) Hashtbl.t;  (* out-of-order appends awaiting gaps *)
  acks : (int, ISet.t) Hashtbl.t;  (* leader: per-index accept voters *)
  mutable acked_to_leader : ISet.t;  (* follower: indices already acked *)
  mutable commit_note_max : int;  (* leader-advertised commit watermark *)
  mutable leader_hint : int option;  (* sender of cur_term leader traffic *)
  mutable trace : Trace.t;
  mutable tr_inst : int;  (* which global instance this replica is part of *)
}

let majority t = Massbft_util.Intmath.raft_quorum t.ng

let create ?initial_leader ~ng ~me cb =
  if ng < 1 then invalid_arg "Raft.create: need at least one group";
  if me < 0 || me >= ng then invalid_arg "Raft.create: bad group id";
  (match initial_leader with
  | Some l when l < 0 || l >= ng -> invalid_arg "Raft.create: bad initial leader"
  | _ -> ());
  let t = {
    ng;
    me;
    preferred = initial_leader;
    cb;
    cur_term = 0;
    cur_role = Follower;
    voted_for = None;
    votes = ISet.empty;
    log = Hashtbl.create 256;
    last_idx = 0;
    commit_idx = 0;
    delivered_idx = 0;
    pending = Hashtbl.create 16;
    acks = Hashtbl.create 64;
    acked_to_leader = ISet.empty;
    commit_note_max = 0;
    leader_hint = initial_leader;
    trace = Trace.null;
    tr_inst = -1;
  }
  in
  (* The initial leadership assignment is a deployment-wide convention
     (instance i is led by group i), equivalent to every group having
     voted for it in term 1. *)
  (match initial_leader with
  | Some l ->
      t.cur_term <- 1;
      t.voted_for <- Some l;
      if l = me then t.cur_role <- Leader
  | None -> ());
  t

let set_trace t tr ~inst =
  t.trace <- tr;
  t.tr_inst <- inst

let acks_for t i =
  ISet.elements (Option.value ~default:ISet.empty (Hashtbl.find_opt t.acks i))

let role t = t.cur_role
let term t = t.cur_term
let last_index t = t.last_idx
let commit_index t = t.commit_idx
let entry_at t i = Option.map fst (Hashtbl.find_opt t.log i)

let broadcast t msg =
  for i = 0 to t.ng - 1 do
    if i <> t.me then t.cb.send i msg
  done

let set_role t role =
  if t.cur_role <> role then begin
    t.cur_role <- role;
    Trace.instant t.trace ~cat:"raft" ~gid:t.me
      ~args:
        [ ("inst", Trace.Int t.tr_inst);
          ("role", Trace.Str (role_name role));
          ("term", Trace.Int t.cur_term) ]
      "role_change";
    t.cb.on_role role ~term:t.cur_term
  end

let step_down t new_term =
  t.cur_term <- new_term;
  t.voted_for <- None;
  t.votes <- ISet.empty;
  t.leader_hint <- None;
  set_role t Follower

(* Advance the commit index through contiguous committed entries,
   firing on_commit in order. Only entries vouched for by the current
   term's leader may commit: a replica that slept through an election
   can hold a dead leader's uncommitted suffix at these indexes, and a
   newer-term Commit_note must not commit that suffix before the new
   leader's re-shipped entries have overwritten it (stored terms are
   rewritten to the shipping leader's term on arrival, so term equality
   is exactly that vouching). *)
let advance_commit_to t target =
  let continue = ref true in
  while !continue && t.commit_idx < target do
    match Hashtbl.find_opt t.log (t.commit_idx + 1) with
    | Some (entry, term) when term = t.cur_term ->
        t.commit_idx <- t.commit_idx + 1;
        t.cb.on_commit ~index:t.commit_idx entry
    | Some _ | None -> continue := false
  done

(* Apply any buffered commit notes / leader-side majorities. *)
let leader_recheck_commit t =
  let continue = ref true in
  while !continue do
    let next = t.commit_idx + 1 in
    let votes =
      Option.value ~default:ISet.empty (Hashtbl.find_opt t.acks next)
    in
    (* The leader's own copy counts as one replica. *)
    if Hashtbl.mem t.log next && ISet.cardinal votes + 1 >= majority t then begin
      advance_commit_to t next;
      if t.commit_idx >= next then
        broadcast t (Commit_note { term = t.cur_term; index = next })
      else continue := false
    end
    else continue := false
  done

let follower_recheck_commit t = advance_commit_to t t.commit_note_max

(* Store contiguous entries from the pending buffer, delivering and
   acking each. *)
let absorb_pending t leader_hint =
  let continue = ref true in
  while !continue do
    let next = t.last_idx + 1 in
    match Hashtbl.find_opt t.pending next with
    | None -> continue := false
    | Some (entry, term) ->
        Hashtbl.remove t.pending next;
        Hashtbl.replace t.log next (entry, term);
        t.last_idx <- next;
        t.delivered_idx <- next;
        t.cb.on_deliver ~index:next entry;
        let release () =
          if not (ISet.mem next t.acked_to_leader) then begin
            t.acked_to_leader <- ISet.add next t.acked_to_leader;
            match leader_hint with
            | Some l when l <> t.me ->
                t.cb.send l (Append_ack { term = t.cur_term; index = next })
            | _ -> ()
          end
        in
        t.cb.ack_guard ~index:next entry release
  done;
  follower_recheck_commit t

let propose t entry =
  if t.cur_role <> Leader then invalid_arg "Raft.propose: not the leader";
  let index = t.last_idx + 1 in
  Hashtbl.replace t.log index (entry, t.cur_term);
  t.last_idx <- index;
  t.delivered_idx <- index;
  t.cb.on_deliver ~index entry;
  broadcast t (Append { term = t.cur_term; index; entry });
  (* A 1-group universe commits instantly. *)
  leader_recheck_commit t;
  index

let become_leader t =
  set_role t Leader;
  t.leader_hint <- Some t.me;
  t.acked_to_leader <- ISet.empty;
  (* The new leader now vouches for its inherited uncommitted suffix:
     re-stamp it with the new term (it is re-shipped under that term
     anyway) so the commit guard in [advance_commit_to] accepts it, and
     drop ack sets collected under dead terms — every entry must be
     re-acknowledged in this term before it can count toward a
     majority. *)
  for i = t.commit_idx + 1 to t.last_idx do
    let entry, _ = Hashtbl.find t.log i in
    Hashtbl.replace t.log i (entry, t.cur_term)
  done;
  Hashtbl.reset t.acks;
  (* Learn where every follower's log ends, then ship it the missing
     suffix (Probe_reply handler below). *)
  broadcast t (Probe { term = t.cur_term });
  leader_recheck_commit t

let replace_uncommitted t ~index entry =
  if t.cur_role <> Leader then
    invalid_arg "Raft.replace_uncommitted: not the leader";
  if index <= t.commit_idx || index > t.last_idx then
    invalid_arg "Raft.replace_uncommitted: index outside the uncommitted suffix";
  Hashtbl.replace t.log index (entry, t.cur_term);
  (* Stale acks referred to the replaced entry. *)
  Hashtbl.remove t.acks index;
  broadcast t (Replace { term = t.cur_term; index; entry })

let heartbeat t =
  if t.cur_role = Leader then broadcast t (Probe { term = t.cur_term })

let start_election t =
  t.cur_term <- t.cur_term + 1;
  t.leader_hint <- None;
  Trace.instant t.trace ~cat:"raft" ~gid:t.me
    ~args:[ ("inst", Trace.Int t.tr_inst); ("term", Trace.Int t.cur_term) ]
    "election";
  t.voted_for <- Some t.me;
  t.votes <- ISet.singleton t.me;
  set_role t Candidate;
  if ISet.cardinal t.votes >= majority t then become_leader t
  else
    broadcast t (Request_vote { term = t.cur_term; last_index = t.last_idx })

let handle t ~from msg =
  if from < 0 || from >= t.ng || from = t.me then ()
  else
    match msg with
    | Append { term; index; entry } ->
        if term > t.cur_term then step_down t term;
        if term = t.cur_term then begin
          if t.cur_role = Candidate then set_role t Follower;
          t.leader_hint <- Some from;
          (* Conflict rule: a stale uncommitted suffix left by a dead
             leader is overwritten by a newer-term append at the same
             index (committed entries can never conflict thanks to the
             vote restriction). *)
          (if index <= t.last_idx then
             match Hashtbl.find_opt t.log index with
             | Some (_, stored_term) when stored_term < term ->
                 for i = index to t.last_idx do
                   Hashtbl.remove t.log i;
                   t.acked_to_leader <- ISet.remove i t.acked_to_leader
                 done;
                 Hashtbl.reset t.pending;
                 t.last_idx <- index - 1;
                 t.delivered_idx <- min t.delivered_idx (index - 1)
             | _ -> ());
          if index > t.last_idx && not (Hashtbl.mem t.log index) then begin
            Hashtbl.replace t.pending index (entry, term);
            absorb_pending t (Some from)
          end
          else if index <= t.last_idx then begin
            (* Duplicate (e.g. a new leader's resend): re-ack so the
               sender can make progress. *)
            if ISet.mem index t.acked_to_leader then
              t.cb.send from (Append_ack { term = t.cur_term; index })
          end
        end
    | Append_ack { term; index } ->
        if term > t.cur_term then step_down t term
        else if term = t.cur_term && t.cur_role = Leader then begin
          let cur =
            Option.value ~default:ISet.empty (Hashtbl.find_opt t.acks index)
          in
          Hashtbl.replace t.acks index (ISet.add from cur);
          leader_recheck_commit t
        end
    | Commit_note { term; index } ->
        if term > t.cur_term then step_down t term;
        if term = t.cur_term && t.cur_role <> Leader then
          t.leader_hint <- Some from;
        if term = t.cur_term && index > t.commit_note_max then begin
          t.commit_note_max <- index;
          follower_recheck_commit t
        end
    | Request_vote { term; last_index } ->
        if term > t.cur_term then step_down t term;
        let grant =
          term = t.cur_term && t.voted_for = None && last_index >= t.last_idx
        in
        if grant then t.voted_for <- Some from;
        t.cb.send from (Vote { term = t.cur_term; granted = grant })
    | Vote { term; granted } ->
        if term > t.cur_term then step_down t term
        else if term = t.cur_term && t.cur_role = Candidate && granted then begin
          t.votes <- ISet.add from t.votes;
          if ISet.cardinal t.votes >= majority t then become_leader t
        end
    | Probe { term } ->
        if term > t.cur_term then step_down t term;
        if term = t.cur_term then begin
          if t.cur_role = Candidate then set_role t Follower;
          if t.cur_role <> Leader then t.leader_hint <- Some from;
          t.cb.send from
            (Probe_reply
               { term = t.cur_term; last_index = t.last_idx; commit_index = t.commit_idx })
        end
    | Probe_reply { term; last_index; commit_index } ->
        if term > t.cur_term then step_down t term
        else if term = t.cur_term && t.cur_role = Leader then begin
          (* The follower's log is only guaranteed to match ours up to
             its commit index; its uncommitted suffix may be a dead
             leader's leftovers, so re-ship from there. Matching entries
             are cheap duplicates (re-acked), conflicting ones are
             replaced via the term-truncation rule. *)
          let from_idx = min last_index commit_index in
          for i = from_idx + 1 to t.last_idx do
            let entry, _ = Hashtbl.find t.log i in
            t.cb.send from (Append { term = t.cur_term; index = i; entry })
          done;
          if t.commit_idx > 0 then
            t.cb.send from (Commit_note { term = t.cur_term; index = t.commit_idx });
          (* Leadership transfer-back (paper §V-C): once the instance's
             preferred leader has recovered and its log has caught up,
             hand leadership home by prompting an immediate campaign. *)
          if
            t.preferred = Some from && from <> t.me
            && last_index + 8 >= t.last_idx
          then begin
            (* Abdicate immediately: we just shipped [from] our entire
               log, and by not proposing anything further we guarantee
               its campaign is at least as up-to-date as every voter. *)
            t.cb.send from (Timeout_now { term = t.cur_term });
            set_role t Follower
          end
        end
    | Timeout_now { term } ->
        (* Leadership-transfer prompt. Only honor it when it comes from
           the node currently believed to be this term's leader: a
           single Byzantine sender must not be able to trigger spurious
           elections (and with them term inflation and vote churn) by
           spraying Timeout_now at followers. A higher-term Timeout_now
           from an unknown sender still advances our term but does not
           start a campaign. *)
        if term > t.cur_term then step_down t term
        else if
          term = t.cur_term && t.cur_role <> Leader
          && t.leader_hint = Some from
        then start_election t
    | Replace { term; index; entry } ->
        if term > t.cur_term then step_down t term;
        if term = t.cur_term && t.cur_role <> Leader then
          t.leader_hint <- Some from;
        if term = t.cur_term then
          if index > t.last_idx then begin
            (* Not received yet: treat as a normal append. *)
            if not (Hashtbl.mem t.log index) then begin
              Hashtbl.replace t.pending index (entry, term);
              absorb_pending t (Some from)
            end
          end
          else if index > t.commit_idx then begin
            (* Overwrite the uncommitted copy regardless of its term and
               re-run the accept guard for the new payload. *)
            Hashtbl.replace t.log index (entry, term);
            t.acked_to_leader <- ISet.remove index t.acked_to_leader;
            let release () =
              if not (ISet.mem index t.acked_to_leader) then begin
                t.acked_to_leader <- ISet.add index t.acked_to_leader;
                if from <> t.me then
                  t.cb.send from (Append_ack { term = t.cur_term; index })
              end
            in
            t.cb.ack_guard ~index entry release
          end
