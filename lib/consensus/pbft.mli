(** PBFT (Castro & Liskov) as a pure, transport-agnostic state machine.

    MassBFT and every competitor in the paper run PBFT for local
    consensus inside each data-center group (n >= 3f + 1 nodes). This
    module implements the three normal-case phases — pre-prepare,
    prepare, commit — plus a view change, and the prepare-skipping
    variant used for the global *accept* phase, where the consensus
    input is already certified by the sender group so followers need not
    agree on it again (paper §II-A, after Ziziphus).

    The state machine never touches a clock or a socket: the embedder
    supplies [send] and receives decisions via [decide], and decides
    when to call [start_view_change] (on its own timeout). This keeps
    the module deterministic and directly testable.

    Authentication model: messages are assumed to arrive over
    point-to-point authenticated channels (the simulator's transport
    plays this role; signature CPU costs are charged by the engine's
    cost model). Byzantine *content* faults are tolerated by quorum
    counting; a replica accepts only the first pre-prepare per (view,
    seq) and needs 2f + 1 matching votes to decide. *)

type msg =
  | Pre_prepare of { view : int; seq : int; digest : string }
  | Prepare of { view : int; seq : int; digest : string }
  | Commit of { view : int; seq : int; digest : string }
  | View_change of { new_view : int; prepared : (int * string) list }
      (** [prepared] carries this replica's prepared-but-undecided
          (seq, digest) pairs, which the new leader must re-propose. *)
  | New_view of { view : int; reproposals : (int * string) list }

type certificate = {
  cert_seq : int;
  cert_digest : string;
  cert_view : int;
  cert_signers : int list;  (** the 2f+1 replicas whose commits decided *)
}

type config = {
  n : int;  (** replicas in the group; requires n >= 3f+1 with f >= 0 *)
  me : int;  (** this replica's id in [0, n) *)
  skip_prepare : bool;
      (** when true, replicas jump from pre-prepare straight to commit
          (the accept-phase variant). *)
}

type callbacks = {
  send : int -> msg -> unit;  (** unicast to a replica id (never [me]) *)
  decide : certificate -> unit;
      (** fired exactly once per decided sequence number, in whatever
          order decisions complete. *)
}

type t

val create : config -> callbacks -> t

val set_trace : t -> Massbft_trace.Trace.t -> gid:int -> unit
(** Attaches a trace sink plus the group id this replica lives in; the
    state machine then emits ["pbft"]-category instants on view-change
    broadcast and on entering a new view. Defaults to the disabled
    sink. *)

val leader_of_view : n:int -> view:int -> int
(** Round-robin: [view mod n]. *)

val view : t -> int
val is_leader : t -> bool
val decided : t -> int -> string option
(** The digest decided at a sequence number, if any. *)

val propose : t -> seq:int -> digest:string -> unit
(** Leader-only: start consensus on [digest] at [seq]. Raises
    [Invalid_argument] if called on a non-leader or with a sequence
    number this leader already proposed in the current view. *)

val handle : t -> from:int -> msg -> unit
(** Feed an incoming message. Unknown views and duplicate votes are
    ignored; the state machine is safe under arbitrary message
    reordering and duplication. *)

val start_view_change : ?target:int -> t -> unit
(** Move to view [max (v+1) target] and broadcast a view-change
    message. The embedder calls this on a progress timeout; it passes a
    [target] past [v+1] to skip over views whose leaders it knows to be
    crashed (repeated timeouts walk the target forward until a live
    leader's view completes). *)

val in_view_change : t -> bool
(** True between a view-change broadcast and entering the new view;
    {!propose} raises while set. *)

val proposed : t -> seq:int -> bool
(** Whether this leader already proposed [seq] in the current view
    (including new-view reproposals) — {!propose} would raise. *)

val rejoin : t -> view:int -> unit
(** Post-recovery state transfer: adopt [view] if it is ahead of ours,
    so a replica that was down while its group changed views can vote
    again. Decided slots are kept; stale vote sets are voided. *)

val resize : t -> n:int -> unit
(** Live membership reconfiguration: adopt the group's new active size
    (quorum math follows). Every replica must resize at the same epoch
    boundary; note [leader_of_view] depends on [n], so the embedder
    re-aligns views across a resize (see Engine). *)

val size : t -> int
(** The current group size ([n] after any {!resize}). *)

val install_decided : t -> seq:int -> digest:string -> unit
(** State transfer onto a joining replica: record [digest] as decided at
    [seq] without re-running consensus or firing [decide]. First
    decision wins. *)
