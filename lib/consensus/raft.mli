(** Raft log replication specialized to MassBFT's global layer.

    Each *group* participates as one logical replica ([ng >= 2fg + 1]
    groups, tolerating [fg] crashed groups — groups are crash-only in
    the paper's threat model because local PBFT masks Byzantine nodes
    inside them). MassBFT runs [ng] parallel instances of this state
    machine; instance [i] is normally led by group [i], which proposes
    its entries through it. The engine maps the logical sends onto
    physical leader-node messages.

    The normal-case phases match the paper's Figure 3: {e propose}
    ([Append]), {e accept} ([Append_ack]) and a {e commit} broadcast
    ([Commit_note]); plus leader election for crashed-group takeover
    (paper §V-C, "Crashed Groups").

    Two embedder hooks make the MassBFT-specific behaviours possible
    without leaking them into the consensus core:
    - [on_deliver] fires the moment a follower receives an entry via
      [Append] — the hook used for overlapped vector-timestamp
      assignment (Figure 7b);
    - [ack_guard] lets the embedder delay the accept until the group
      genuinely holds the entry (Lemma V.1's atomicity argument) and
      until the local skip-prepare PBFT round on the accept decision has
      finished.

    Simplification, documented: payloads are protected by PBFT
    certificates, so two different entries can never occupy the same
    index (the paper relies on the same argument to run CFT consensus
    over Byzantine groups); log-conflict truncation is therefore
    omitted. *)

type role = Leader | Follower | Candidate

type 'p msg =
  | Append of { term : int; index : int; entry : 'p }
  | Append_ack of { term : int; index : int }
  | Commit_note of { term : int; index : int }
  | Request_vote of { term : int; last_index : int }
  | Vote of { term : int; granted : bool }
  | Probe of { term : int }
      (** a new leader asking followers for their log positions *)
  | Probe_reply of { term : int; last_index : int; commit_index : int }
  | Timeout_now of { term : int }
      (** leadership transfer: the recipient should campaign now *)
  | Replace of { term : int; index : int; entry : 'p }
      (** unconditional same-term overwrite of an uncommitted index (see
          {!replace_uncommitted}) *)

type 'p callbacks = {
  send : int -> 'p msg -> unit;  (** unicast to a group id (never [me]) *)
  on_deliver : index:int -> 'p -> unit;
      (** an entry became locally known, in log order, before commit *)
  on_commit : index:int -> 'p -> unit;  (** committed, in log order *)
  on_role : role -> term:int -> unit;
  ack_guard : index:int -> 'p -> (unit -> unit) -> unit;
      (** [ack_guard ~index entry k] must eventually call [k] to release
          the accept for [index]. Default embedding: [k ()] directly. *)
}

type 'p t

val create : ?initial_leader:int -> ng:int -> me:int -> 'p callbacks -> 'p t
(** [initial_leader] encodes the deployment convention that instance [i]
    starts out led by group [i]: the replica boots in term 1 with its
    vote already cast for that group (leadership without an election
    round). *)

val set_trace : 'p t -> Massbft_trace.Trace.t -> inst:int -> unit
(** Attaches a trace sink plus the global-instance id this replica
    belongs to; the state machine then emits ["raft"]-category instants
    on elections and role changes. Defaults to the disabled sink. *)

val acks_for : 'p t -> int -> int list
(** Accept voters recorded for a log index (leader-side diagnostic). *)

val role : 'p t -> role
val term : 'p t -> int
val last_index : 'p t -> int
val commit_index : 'p t -> int
val entry_at : 'p t -> int -> 'p option
(** Entries are 1-indexed, matching Raft convention. *)

val propose : 'p t -> 'p -> int
(** Leader-only; returns the assigned index. Raises [Invalid_argument]
    on a non-leader. *)

val handle : 'p t -> from:int -> 'p msg -> unit

val replace_uncommitted : 'p t -> index:int -> 'p -> unit
(** Leader-only: overwrite an entry of the leader's own uncommitted
    suffix (commit_idx < index <= last_idx) with a new payload in the
    current term, re-broadcasting it; followers' stale copies are
    replaced through the term-conflict rule. MassBFT uses this to no-op
    a dead group's in-flight entries whose content is unrecoverable —
    such entries can never have committed anywhere (their accept quorum
    was content-gated), so the overwrite cannot contradict any live
    node. Raises [Invalid_argument] outside the suffix. *)

val heartbeat : 'p t -> unit
(** Leader-only anti-entropy tick: broadcast a [Probe]. Followers answer
    with their log positions and the leader ships whatever they miss —
    this doubles as the liveness heartbeat and as catch-up for lagging
    or recovered groups. No-op on non-leaders. *)

val start_election : 'p t -> unit
(** Embedder-driven election timeout: become candidate in term + 1. In a
    single-group universe ([ng = 1]) this wins immediately. *)
