module Sim = Massbft_sim.Sim
module Registry = Massbft_obs.Registry

(* Host-side self-profiling of the simulator's own execution.

   Everything the repo's other observability measures — traces, the
   sampler, saturation verdicts — lives in *simulated* time; this
   module accounts where the host's *wall-clock* goes while the
   simulator produces those simulated seconds: event execution per
   shard, barrier stalls per worker domain, the coordinator's
   inter-window mailbox merge, and the scan/setup glue between windows,
   plus GC pressure sampled per window. It is the instrument scheduler
   and codec perf work is judged with.

   The design constraint is that profiling must not perturb the run:
   the hooks (Sim.host_prof) never read simulation state, never
   schedule events, and are invoked per *window*, never per event —
   the overhead budget is <= 2% of wall time on the macro rows.
   Dispatch order is untouched, so golden fixtures stay byte-identical
   with profiling on. *)

(* CLOCK_MONOTONIC via bechamel's noalloc stub, in seconds. *)
let monotonic () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

type window = {
  w_end : float;  (* simulated time at the window's (slice's) end *)
  w_host_t0 : float;  (* host seconds since profiling started *)
  w_wall : float;  (* driver-thread wall time of the whole window *)
  w_span : float;  (* execute region: wait-for-workers, or the slice *)
  w_coord : float;  (* scan + setup + release (parallel only) *)
  w_merge : float;  (* mailbox drain + clock advance (parallel only) *)
  w_exec : float array;  (* per-shard execute seconds; [||] sequential *)
  w_stall : float array;  (* per-worker barrier stall; [||] sequential *)
  w_events : int;
  w_seq : bool;  (* a sequential-driver slice rather than a window *)
  w_gc_minor : int;  (* driver-domain Gc.quick_stat deltas *)
  w_gc_major : int;
  w_gc_promoted_w : float;
}

type t = {
  clock : unit -> float;
  mutable shards : int;
  mutable lookahead : float;
  mutable attached : bool;
  mutable t0 : float option;  (* host time of the first window's start *)
  mutable finished : float option;
  (* current-window accumulators: the [sid] / [worker] slots are each
     written by exactly one domain per window, and the barrier mutex
     orders those writes before the driver thread's window snapshot. *)
  mutable cur_exec : float array;
  mutable cur_events : int array;  (* per shard *)
  mutable cur_stall : float array;  (* per worker *)
  (* totals *)
  mutable windows_rev : window list;
  mutable n_windows : int;  (* parallel windows *)
  mutable n_seq : int;  (* sequential slices *)
  mutable tot_exec : float array;  (* per shard *)
  mutable tot_events_shard : int array;
  mutable tot_stall : float array;  (* per worker *)
  mutable tot_events : int;
  mutable tot_coord : float;
  mutable tot_merge : float;
  mutable tot_span : float;  (* parallel execute regions *)
  mutable tot_seq_wall : float;  (* sequential slices *)
  mutable tot_attr : float;  (* sum of window walls: attributed time *)
  mutable max_worker : int;  (* highest worker id seen; -1 if none *)
  mutable max_w_end : float;
  (* GC sampling. The driver-domain baseline is re-sampled at every
     window; worker domains sample at their stall points (on their own
     domain — Gc.quick_stat is domain-local in OCaml 5) and accumulate
     into per-worker totals. *)
  mutable gc_last : Gc.stat;
  mutable worker_gc : Gc.stat option array;
  mutable worker_gc_minor : int array;
  mutable worker_gc_major : int array;
  mutable worker_gc_promoted : float array;
}

let create ?clock () =
  let clock = match clock with Some c -> c | None -> monotonic in
  {
    clock;
    shards = 1;
    lookahead = 0.0;
    attached = false;
    t0 = None;
    finished = None;
    cur_exec = [||];
    cur_events = [||];
    cur_stall = [||];
    windows_rev = [];
    n_windows = 0;
    n_seq = 0;
    tot_exec = [||];
    tot_events_shard = [||];
    tot_stall = [||];
    tot_events = 0;
    tot_coord = 0.0;
    tot_merge = 0.0;
    tot_span = 0.0;
    tot_seq_wall = 0.0;
    tot_attr = 0.0;
    max_worker = -1;
    max_w_end = 0.0;
    gc_last = Gc.quick_stat ();
    worker_gc = [||];
    worker_gc_minor = [||];
    worker_gc_major = [||];
    worker_gc_promoted = [||];
  }

let note_start p t_now =
  match p.t0 with Some _ -> () | None -> p.t0 <- Some t_now

(* Driver-domain GC delta since the previous window. *)
let gc_delta p =
  let g = Gc.quick_stat () in
  let last = p.gc_last in
  p.gc_last <- g;
  ( g.Gc.minor_collections - last.Gc.minor_collections,
    g.Gc.major_collections - last.Gc.major_collections,
    g.Gc.promoted_words -. last.Gc.promoted_words )

let push_window p w =
  p.windows_rev <- w :: p.windows_rev;
  p.tot_attr <- p.tot_attr +. w.w_wall;
  p.tot_events <- p.tot_events + w.w_events;
  if w.w_end > p.max_w_end then p.max_w_end <- w.w_end

let hp_execute p ~sid ~dt ~events =
  p.cur_exec.(sid) <- p.cur_exec.(sid) +. dt;
  p.cur_events.(sid) <- p.cur_events.(sid) + events

let hp_stall p ~worker ~dt =
  p.cur_stall.(worker) <- p.cur_stall.(worker) +. dt;
  if worker > p.max_worker then p.max_worker <- worker;
  (* Worker-domain GC sample: quick_stat on the calling domain, so the
     delta is this worker's own minor/major activity since its last
     release. The first release only establishes the baseline. *)
  let g = Gc.quick_stat () in
  (match p.worker_gc.(worker) with
  | Some last ->
      p.worker_gc_minor.(worker) <-
        p.worker_gc_minor.(worker)
        + (g.Gc.minor_collections - last.Gc.minor_collections);
      p.worker_gc_major.(worker) <-
        p.worker_gc_major.(worker)
        + (g.Gc.major_collections - last.Gc.major_collections);
      p.worker_gc_promoted.(worker) <-
        p.worker_gc_promoted.(worker)
        +. (g.Gc.promoted_words -. last.Gc.promoted_words)
  | None -> ());
  p.worker_gc.(worker) <- Some g

let hp_coord p ~dt = p.tot_coord <- p.tot_coord +. dt

let hp_merge p ~dt = p.tot_merge <- p.tot_merge +. dt

let hp_window p ~w_end ~span ~wall =
  let t_now = p.clock () in
  note_start p (t_now -. wall);
  let t0 = Option.get p.t0 in
  let exec = Array.copy p.cur_exec in
  let stall = Array.copy p.cur_stall in
  let events = Array.fold_left ( + ) 0 p.cur_events in
  Array.iteri
    (fun i v ->
      p.tot_exec.(i) <- p.tot_exec.(i) +. v;
      p.tot_events_shard.(i) <- p.tot_events_shard.(i) + p.cur_events.(i))
    p.cur_exec;
  Array.iteri
    (fun i v -> p.tot_stall.(i) <- p.tot_stall.(i) +. v)
    p.cur_stall;
  Array.fill p.cur_exec 0 (Array.length p.cur_exec) 0.0;
  Array.fill p.cur_events 0 (Array.length p.cur_events) 0;
  Array.fill p.cur_stall 0 (Array.length p.cur_stall) 0.0;
  p.tot_span <- p.tot_span +. span;
  p.n_windows <- p.n_windows + 1;
  let minor, major, promoted = gc_delta p in
  push_window p
    {
      w_end;
      w_host_t0 = t_now -. wall -. t0;
      w_wall = wall;
      w_span = span;
      w_coord = 0.0;
      (* per-window coord/merge splits are folded into the totals by
         hp_coord/hp_merge; reconstruct the window's own split from
         wall - span - merge when needed *)
      w_merge = 0.0;
      w_exec = exec;
      w_stall = stall;
      w_events = events;
      w_seq = false;
      w_gc_minor = minor;
      w_gc_major = major;
      w_gc_promoted_w = promoted;
    }

let hp_seq p ~until ~dt ~events =
  let t_now = p.clock () in
  note_start p (t_now -. dt);
  let t0 = Option.get p.t0 in
  p.n_seq <- p.n_seq + 1;
  p.tot_seq_wall <- p.tot_seq_wall +. dt;
  let minor, major, promoted = gc_delta p in
  push_window p
    {
      w_end = until;
      w_host_t0 = t_now -. dt -. t0;
      w_wall = dt;
      w_span = dt;
      w_coord = 0.0;
      w_merge = 0.0;
      w_exec = [||];
      w_stall = [||];
      w_events = events;
      w_seq = true;
      w_gc_minor = minor;
      w_gc_major = major;
      w_gc_promoted_w = promoted;
    }

let attach p sim =
  if p.attached then invalid_arg "Prof.attach: already attached";
  p.attached <- true;
  let n = Sim.n_shards sim in
  p.shards <- n;
  p.lookahead <- Sim.lookahead sim;
  p.cur_exec <- Array.make n 0.0;
  p.cur_events <- Array.make n 0;
  p.cur_stall <- Array.make n 0.0;
  p.tot_exec <- Array.make n 0.0;
  p.tot_events_shard <- Array.make n 0;
  p.tot_stall <- Array.make n 0.0;
  p.worker_gc <- Array.make n None;
  p.worker_gc_minor <- Array.make n 0;
  p.worker_gc_major <- Array.make n 0;
  p.worker_gc_promoted <- Array.make n 0.0;
  p.gc_last <- Gc.quick_stat ();
  Sim.set_prof sim
    (Some
       {
         Sim.hp_clock = p.clock;
         hp_execute = (fun ~sid ~dt ~events -> hp_execute p ~sid ~dt ~events);
         hp_stall = (fun ~worker ~dt -> hp_stall p ~worker ~dt);
         hp_coord = (fun ~dt -> hp_coord p ~dt);
         hp_merge = (fun ~dt -> hp_merge p ~dt);
         hp_window = (fun ~w_end ~span ~wall -> hp_window p ~w_end ~span ~wall);
         hp_seq = (fun ~until ~dt ~events -> hp_seq p ~until ~dt ~events);
       })

let finish p =
  if p.finished = None then p.finished <- Some (p.clock ())

let windows p = List.rev p.windows_rev

(* ------------------------------------------------------------------ *)
(* Report derivation                                                   *)
(* ------------------------------------------------------------------ *)

type phase = { p_name : string; p_seconds : float; p_share : float }

type shard_stat = { ss_id : int; ss_execute_s : float; ss_events : int }

type domain_stat = {
  ds_id : int;
  ds_execute_s : float;
  ds_stall_s : float;
  ds_busy : float;  (* execute / (execute + stall) *)
  ds_gc_minor : int;
  ds_gc_major : int;
  ds_gc_promoted_w : float;
}

type report = {
  rp_shards : int;
  rp_domains : int;  (* worker domains seen; 1 for sequential runs *)
  rp_windows : int;  (* parallel windows *)
  rp_seq_slices : int;
  rp_lookahead : float;
  rp_wall_s : float;  (* first window start .. finish (or report time) *)
  rp_sim_end_s : float;
  rp_events : int;
  rp_events_per_window : float;  (* lookahead utilization *)
  rp_attributed_s : float;  (* sum of window walls *)
  rp_attributed_share : float;
  rp_execute_span_s : float;  (* driver-timeline execute region *)
  rp_merge_s : float;
  rp_coord_s : float;
  rp_exec_domain_s : float;  (* per-shard execute summed: domain-seconds *)
  rp_stall_s : float;
  rp_wall_attribution : phase list;  (* ranked, driver timeline *)
  rp_per_shard : shard_stat list;
  rp_per_domain : domain_stat list;
  rp_gc_minor : int;
  rp_gc_major : int;
  rp_gc_promoted_w : float;
}

let report p =
  let t_end =
    match p.finished with Some t -> t | None -> p.clock ()
  in
  let wall =
    match p.t0 with Some t0 -> Float.max (t_end -. t0) 1e-9 | None -> 0.0
  in
  let nd = if p.max_worker >= 0 then p.max_worker + 1 else 1 in
  let exec_domain = Array.fold_left ( +. ) 0.0 p.tot_exec in
  let stall = Array.fold_left ( +. ) 0.0 p.tot_stall in
  let exec_span = p.tot_span +. p.tot_seq_wall in
  let n_all = p.n_windows + p.n_seq in
  let share s = if wall > 0.0 then s /. wall else 0.0 in
  let attribution =
    let unattr = Float.max (wall -. p.tot_attr) 0.0 in
    List.sort
      (fun a b -> compare b.p_seconds a.p_seconds)
      [
        { p_name = "execute"; p_seconds = exec_span; p_share = share exec_span };
        {
          p_name = "mailbox-merge";
          p_seconds = p.tot_merge;
          p_share = share p.tot_merge;
        };
        {
          p_name = "coordinator";
          p_seconds = p.tot_coord;
          p_share = share p.tot_coord;
        };
        { p_name = "unattributed"; p_seconds = unattr; p_share = share unattr };
      ]
  in
  let per_shard =
    List.init p.shards (fun i ->
        {
          ss_id = i;
          ss_execute_s = p.tot_exec.(i);
          ss_events = p.tot_events_shard.(i);
        })
  in
  let per_domain =
    List.init nd (fun d ->
        (* Worker [d] owns shards d, d+nd, d+2nd, ... for the whole
           run (Sim.run_parallel's stable ownership). *)
        let e = ref 0.0 in
        let k = ref d in
        while !k < p.shards do
          e := !e +. p.tot_exec.(!k);
          k := !k + nd
        done;
        let e = !e in
        let st = if d < Array.length p.tot_stall then p.tot_stall.(d) else 0.0 in
        let e_for_busy = if p.max_worker < 0 then p.tot_seq_wall else e in
        {
          ds_id = d;
          ds_execute_s = e_for_busy;
          ds_stall_s = st;
          ds_busy =
            (if e_for_busy +. st > 0.0 then e_for_busy /. (e_for_busy +. st)
             else 0.0);
          ds_gc_minor = p.worker_gc_minor.(d);
          ds_gc_major = p.worker_gc_major.(d);
          ds_gc_promoted_w = p.worker_gc_promoted.(d);
        })
  in
  let fold_w f init = List.fold_left f init p.windows_rev in
  let gc_minor =
    fold_w (fun acc w -> acc + w.w_gc_minor) 0
    + Array.fold_left ( + ) 0 p.worker_gc_minor
  in
  let gc_major =
    fold_w (fun acc w -> acc + w.w_gc_major) 0
    + Array.fold_left ( + ) 0 p.worker_gc_major
  in
  let gc_promoted =
    fold_w (fun acc w -> acc +. w.w_gc_promoted_w) 0.0
    +. Array.fold_left ( +. ) 0.0 p.worker_gc_promoted
  in
  {
    rp_shards = p.shards;
    rp_domains = nd;
    rp_windows = p.n_windows;
    rp_seq_slices = p.n_seq;
    rp_lookahead = p.lookahead;
    rp_wall_s = wall;
    rp_sim_end_s = p.max_w_end;
    rp_events = p.tot_events;
    rp_events_per_window =
      (if n_all > 0 then float_of_int p.tot_events /. float_of_int n_all
       else 0.0);
    rp_attributed_s = p.tot_attr;
    rp_attributed_share = (if wall > 0.0 then p.tot_attr /. wall else 0.0);
    rp_execute_span_s = exec_span;
    rp_merge_s = p.tot_merge;
    rp_coord_s = p.tot_coord;
    rp_exec_domain_s = exec_domain;
    rp_stall_s = stall;
    rp_wall_attribution = attribution;
    rp_per_shard = per_shard;
    rp_per_domain = per_domain;
    rp_gc_minor = gc_minor;
    rp_gc_major = gc_major;
    rp_gc_promoted_w = gc_promoted;
  }

(* ------------------------------------------------------------------ *)
(* Obs registry reuse                                                  *)
(* ------------------------------------------------------------------ *)

let register p registry =
  let phase_gauge phase f =
    Registry.gauge_fn registry ~name:"massbft_prof_phase_seconds"
      ~help:"Host wall-clock seconds accounted to a scheduler phase"
      [ ("phase", phase) ]
      f
  in
  phase_gauge "execute" (fun () ->
      Array.fold_left ( +. ) 0.0 p.tot_exec +. p.tot_seq_wall);
  phase_gauge "barrier_stall" (fun () ->
      Array.fold_left ( +. ) 0.0 p.tot_stall);
  phase_gauge "mailbox_merge" (fun () -> p.tot_merge);
  phase_gauge "coordinator" (fun () -> p.tot_coord);
  Registry.counter_fn registry ~name:"massbft_prof_windows_total"
    ~help:"Scheduler windows (parallel) and slices (sequential) profiled" []
    (fun () -> p.n_windows + p.n_seq);
  Registry.counter_fn registry ~name:"massbft_prof_events_total"
    ~help:"Events dispatched during profiled windows" [] (fun () ->
      p.tot_events);
  Registry.counter_fn registry ~name:"massbft_prof_gc_minor_total"
    ~help:"Minor collections sampled during profiled windows" [] (fun () ->
      List.fold_left
        (fun acc w -> acc + w.w_gc_minor)
        (Array.fold_left ( + ) 0 p.worker_gc_minor)
        p.windows_rev)
