module Trace = Massbft_trace.Trace

(* ------------------------------------------------------------------ *)
(* Text report (Saturation-style ranked listing)                       *)
(* ------------------------------------------------------------------ *)

let pct v = 100.0 *. v

let text (r : Prof.report) =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add
    "Host profile: %d shard%s x %d domain%s, %d window%s (%d sequential \
     slice%s), lookahead %.3f s\n"
    r.rp_shards
    (if r.rp_shards = 1 then "" else "s")
    r.rp_domains
    (if r.rp_domains = 1 then "" else "s")
    r.rp_windows
    (if r.rp_windows = 1 then "" else "s")
    r.rp_seq_slices
    (if r.rp_seq_slices = 1 then "" else "s")
    r.rp_lookahead;
  add "wall %.3f s for %.1f sim s (%.1fx real time), %d events, %.0f events/window\n"
    r.rp_wall_s r.rp_sim_end_s
    (if r.rp_wall_s > 0.0 then r.rp_sim_end_s /. r.rp_wall_s else 0.0)
    r.rp_events r.rp_events_per_window;
  add "attributed %.3f s = %.1f%% of wall\n" r.rp_attributed_s
    (pct r.rp_attributed_share);
  add "where the wall time went:\n";
  List.iter
    (fun (p : Prof.phase) ->
      add "  %-16s %8.3f s  %5.1f%%\n" p.p_name p.p_seconds (pct p.p_share))
    r.rp_wall_attribution;
  if r.rp_domains > 1 || r.rp_stall_s > 0.0 then begin
    add "per domain (execute vs barrier stall):\n";
    List.iter
      (fun (d : Prof.domain_stat) ->
        add "  domain %-2d  execute %8.3f s  stall %8.3f s  busy %5.1f%%  gc %d minor / %d major\n"
          d.ds_id d.ds_execute_s d.ds_stall_s (pct d.ds_busy) d.ds_gc_minor
          d.ds_gc_major)
      r.rp_per_domain
  end;
  if r.rp_shards > 1 then begin
    add "per shard:\n";
    List.iter
      (fun (s : Prof.shard_stat) ->
        add "  shard %-3d  execute %8.3f s  %d events\n" s.ss_id s.ss_execute_s
          s.ss_events)
      r.rp_per_shard
  end;
  add "gc: %d minor, %d major, %.0f promoted words\n" r.rp_gc_minor
    r.rp_gc_major r.rp_gc_promoted_w;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON export                                                         *)
(* ------------------------------------------------------------------ *)

let schema_version = 1

let esc s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = Printf.sprintf "\"%s\"" (esc s)

let jnum f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let jobj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields) ^ "}"

let jarr items = "[" ^ String.concat "," items ^ "]"

let phase_fields (r : Prof.report) =
  [
    ("execute", jnum r.rp_execute_span_s);
    ("barrier_stall", jnum r.rp_stall_s);
    ("mailbox_merge", jnum r.rp_merge_s);
    ("coordinator", jnum r.rp_coord_s);
  ]

let report_fields (r : Prof.report) =
  [
    ("shards", string_of_int r.rp_shards);
    ("domains", string_of_int r.rp_domains);
    ("windows", string_of_int r.rp_windows);
    ("seq_slices", string_of_int r.rp_seq_slices);
    ("lookahead_s", jnum r.rp_lookahead);
    ("wall_s", jnum r.rp_wall_s);
    ("sim_end_s", jnum r.rp_sim_end_s);
    ( "sim_s_per_wall_s",
      jnum (if r.rp_wall_s > 0.0 then r.rp_sim_end_s /. r.rp_wall_s else 0.0)
    );
    ("events", string_of_int r.rp_events);
    ("events_per_window", jnum r.rp_events_per_window);
    ("attributed_s", jnum r.rp_attributed_s);
    ("attributed_share", jnum r.rp_attributed_share);
    ("phases", jobj (phase_fields r));
    ( "attribution",
      jarr
        (List.map
           (fun (p : Prof.phase) ->
             jobj
               [
                 ("phase", jstr p.p_name);
                 ("seconds", jnum p.p_seconds);
                 ("share", jnum p.p_share);
               ])
           r.rp_wall_attribution) );
    ( "per_shard",
      jarr
        (List.map
           (fun (s : Prof.shard_stat) ->
             jobj
               [
                 ("shard", string_of_int s.ss_id);
                 ("execute_s", jnum s.ss_execute_s);
                 ("events", string_of_int s.ss_events);
               ])
           r.rp_per_shard) );
    ( "per_domain",
      jarr
        (List.map
           (fun (d : Prof.domain_stat) ->
             jobj
               [
                 ("domain", string_of_int d.ds_id);
                 ("execute_s", jnum d.ds_execute_s);
                 ("stall_s", jnum d.ds_stall_s);
                 ("busy", jnum d.ds_busy);
                 ("gc_minor", string_of_int d.ds_gc_minor);
                 ("gc_major", string_of_int d.ds_gc_major);
                 ("gc_promoted_words", jnum d.ds_gc_promoted_w);
               ])
           r.rp_per_domain) );
    ( "gc",
      jobj
        [
          ("minor_collections", string_of_int r.rp_gc_minor);
          ("major_collections", string_of_int r.rp_gc_major);
          ("promoted_words", jnum r.rp_gc_promoted_w);
        ] );
  ]

let window_json (w : Prof.window) =
  jobj
    [
      ("sim_end_s", jnum w.w_end);
      ("host_t0_s", jnum w.w_host_t0);
      ("wall_s", jnum w.w_wall);
      ("span_s", jnum w.w_span);
      ("events", string_of_int w.w_events);
      ("sequential", if w.w_seq then "true" else "false");
      ("exec_s", jarr (Array.to_list (Array.map jnum w.w_exec)));
      ("stall_s", jarr (Array.to_list (Array.map jnum w.w_stall)));
      ("gc_minor", string_of_int w.w_gc_minor);
      ("gc_major", string_of_int w.w_gc_major);
      ("gc_promoted_words", jnum w.w_gc_promoted_w);
    ]

let json ?(windows = false) p =
  let r = Prof.report p in
  let fields =
    (("schema_version", string_of_int schema_version) :: report_fields r)
    @
    if windows then
      [ ("window_log", jarr (List.map window_json (Prof.windows p))) ]
    else []
  in
  jobj fields

let write_json ?windows p path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (json ?windows p);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Host-timeline trace events                                          *)
(* ------------------------------------------------------------------ *)

(* Builds a Trace sink whose timestamps are *host* seconds since the
   first profiled window. trace_export.ml maps these onto a separate
   pid namespace (via the "host.*" categories) so one Perfetto file
   shows the simulated timeline and the host timeline side by side.

   Per-window coordinator/merge splits are not logged per window (only
   the totals are), so the coordinator track approximates: the gap
   between a window's start and its execute region is labeled "setup",
   the gap after it "merge" — exact at the totals level, approximate
   per window when the scan and drain costs vary across windows. *)
let to_trace p =
  let ws = Prof.windows p in
  let n = List.length ws in
  let shards, workers =
    List.fold_left
      (fun (s, d) (w : Prof.window) ->
        (max s (Array.length w.w_exec), max d (Array.length w.w_stall)))
      (1, 1) ws
  in
  (* worst case per parallel window: setup + window + merge on the
     coordinator track, one exec span per shard, one stall span per
     worker; 2 trace events per span *)
  let capacity = max 1024 (2 * n * (3 + shards + workers)) in
  let t = Trace.create ~capacity () in
  let r = Prof.report p in
  (* coordinator/merge per-window approximation: split the non-execute
     remainder of each window proportionally to the run-wide
     coordinator vs merge totals *)
  let coord_frac =
    let tot = r.rp_coord_s +. r.rp_merge_s in
    if tot > 0.0 then r.rp_coord_s /. tot else 0.5
  in
  List.iter
    (fun (w : Prof.window) ->
      let t0 = w.w_host_t0 in
      if w.w_seq then
        Trace.span t ~cat:"host.coord" ~gid:(-1) ~b:t0 ~e:(t0 +. w.w_wall)
          ~args:[ ("events", Trace.Int w.w_events) ]
          "seq"
      else begin
        let overhead = Float.max (w.w_wall -. w.w_span) 0.0 in
        let coord = overhead *. coord_frac in
        let exec_b = t0 +. coord in
        let exec_e = exec_b +. w.w_span in
        if coord > 0.0 then
          Trace.span t ~cat:"host.coord" ~gid:(-1) ~b:t0 ~e:exec_b "setup";
        Trace.span t ~cat:"host.coord" ~gid:(-1) ~b:exec_b ~e:exec_e
          ~args:[ ("events", Trace.Int w.w_events) ]
          "window";
        if w.w_wall > coord +. w.w_span then
          Trace.span t ~cat:"host.coord" ~gid:(-1) ~b:exec_e
            ~e:(t0 +. w.w_wall) "merge";
        Array.iteri
          (fun sid dt ->
            if dt > 0.0 then
              Trace.span t ~cat:"host.shard" ~gid:sid ~b:exec_b
                ~e:(exec_b +. dt) "execute")
          w.w_exec;
        Array.iteri
          (fun worker dt ->
            if dt > 0.0 then
              (* the stall precedes this window's execute region; clamp
                 at 0 so the first window's spawn wait stays on-screen *)
              let b = Float.max (exec_b -. dt) 0.0 in
              Trace.span t ~cat:"host.domain" ~gid:worker ~b ~e:exec_b
                "stall")
          w.w_stall
      end)
    ws;
  t
