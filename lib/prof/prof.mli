(** Host-side self-profiling of the simulator.

    Everything else in the observability stack ([massbft_trace],
    [massbft_obs]) measures {e simulated} time; this module accounts
    where the host's {e wall-clock} goes while the simulator produces
    those simulated seconds. Per lockstep window it splits the driver's
    wall time into execute / barrier-stall / mailbox-merge /
    coordinator phases, samples [Gc.quick_stat] deltas, and derives a
    parallel-efficiency report (busy fraction per domain, lookahead
    utilization, ranked wall-time attribution in the style of
    [Saturation]).

    The collection side rides the {!Massbft_sim.Sim.host_prof} hook
    record: a handful of monotonic-clock reads per window, never
    per-event work, so overhead stays within the 2% budget and
    profiled runs remain byte-identical to unprofiled ones. *)

val monotonic : unit -> float
(** CLOCK_MONOTONIC in seconds (bechamel's noalloc stub). *)

type t
(** A profiler: accumulators plus the window log. One profiler
    instruments one simulator for one run. *)

val create : ?clock:(unit -> float) -> unit -> t
(** [clock] (default {!monotonic}) exists so tests can drive the
    profiler with a deterministic virtual host clock. *)

val attach : t -> Massbft_sim.Sim.t -> unit
(** Installs the profiler's hooks via [Sim.set_prof]. Must happen
    before the run (raises [Invalid_argument] if this profiler is
    already attached, or — from [Sim.set_prof] — while the parallel
    driver is active). *)

val finish : t -> unit
(** Freezes the wall-clock endpoint used by {!report}. Idempotent;
    calling {!report} without [finish] uses the current time. *)

(** {1 Raw window log} *)

type window = {
  w_end : float;  (** simulated time at the window's (slice's) end *)
  w_host_t0 : float;  (** host seconds since profiling started *)
  w_wall : float;  (** driver-thread wall time of the whole window *)
  w_span : float;  (** execute region: wait-for-workers, or the slice *)
  w_coord : float;  (** reserved; per-window split folded into totals *)
  w_merge : float;  (** reserved; per-window split folded into totals *)
  w_exec : float array;  (** per-shard execute seconds; [[||]] sequential *)
  w_stall : float array;  (** per-worker barrier stall; [[||]] sequential *)
  w_events : int;
  w_seq : bool;  (** a sequential-driver slice rather than a window *)
  w_gc_minor : int;  (** driver-domain [Gc.quick_stat] deltas *)
  w_gc_major : int;
  w_gc_promoted_w : float;
}

val windows : t -> window list
(** Oldest first. *)

(** {1 Derived report} *)

type phase = { p_name : string; p_seconds : float; p_share : float }

type shard_stat = { ss_id : int; ss_execute_s : float; ss_events : int }

type domain_stat = {
  ds_id : int;
  ds_execute_s : float;
  ds_stall_s : float;
  ds_busy : float;  (** execute / (execute + stall) *)
  ds_gc_minor : int;
  ds_gc_major : int;
  ds_gc_promoted_w : float;
}

type report = {
  rp_shards : int;
  rp_domains : int;  (** worker domains seen; 1 for sequential runs *)
  rp_windows : int;  (** parallel windows *)
  rp_seq_slices : int;
  rp_lookahead : float;
  rp_wall_s : float;  (** first window start .. {!finish} *)
  rp_sim_end_s : float;
  rp_events : int;
  rp_events_per_window : float;  (** lookahead utilization *)
  rp_attributed_s : float;  (** sum of window walls *)
  rp_attributed_share : float;  (** attributed / wall; the >= 95% figure *)
  rp_execute_span_s : float;  (** driver-timeline execute region *)
  rp_merge_s : float;
  rp_coord_s : float;
  rp_exec_domain_s : float;  (** per-shard execute summed: domain-seconds *)
  rp_stall_s : float;
  rp_wall_attribution : phase list;  (** ranked, driver timeline *)
  rp_per_shard : shard_stat list;
  rp_per_domain : domain_stat list;
  rp_gc_minor : int;
  rp_gc_major : int;
  rp_gc_promoted_w : float;
}

val report : t -> report
(** Wall time runs from the first window's start to {!finish} (or now),
    so engine construction and topology setup before the first event
    are deliberately outside the attribution denominator. *)

val register : t -> Massbft_obs.Registry.t -> unit
(** Exposes the live accumulators as polled series
    ([massbft_prof_phase_seconds{phase=...}],
    [massbft_prof_windows_total], [massbft_prof_events_total],
    [massbft_prof_gc_minor_total]) so prof data rides the existing
    Prometheus-text exporter unchanged. *)
