(** Rendering for {!Prof}: text report, JSON document, and a
    host-timeline trace sink for the dual-timeline Perfetto export. *)

val schema_version : int
(** Version of the JSON document layout (currently 1). *)

val text : Prof.report -> string
(** Ranked "where the wall time went" listing in the style of
    [Saturation.report], plus per-domain busy fractions and GC totals. *)

val json : ?windows:bool -> Prof.t -> string
(** The full report as a single-line JSON object ([schema_version],
    phase totals, ranked attribution, per-shard / per-domain stats, GC
    deltas). [windows] (default false) appends the raw per-window log
    under ["window_log"]. *)

val write_json : ?windows:bool -> Prof.t -> string -> unit

val to_trace : Prof.t -> Massbft_trace.Trace.t
(** Renders the window log as host-time spans — categories
    ["host.coord"] (setup / window / merge per window, [gid = -1]),
    ["host.shard"] (per-shard execute, [gid] = shard id) and
    ["host.domain"] (per-worker barrier stall, [gid] = worker id) —
    with timestamps in host seconds since the first profiled window.
    Pass the result as [?host] to
    {!Massbft_trace.Trace_export.write_chrome_json} to get one Perfetto
    file showing sim and host timelines side by side. *)
