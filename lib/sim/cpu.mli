(** A multi-core CPU model: [cores] parallel servers fed from a FIFO
    queue. Transaction signature verification during local PBFT
    consensus is the dominant CPU cost in the paper (it caps MassBFT's
    scaling beyond 16 nodes per group, Figure 13a, and throttles TPC-C,
    Figure 8d), so compute time must be a first-class simulated
    resource, not free. *)

type t

val create : Sim.t -> cores:int -> t

val submit : t -> seconds:float -> (unit -> unit) -> unit
(** [submit t ~seconds k] enqueues a task needing [seconds] of
    single-core compute; [k] runs at its completion. Tasks start in FIFO
    order on the earliest-free core. The cost is stretched by the
    current {!set_speed_factor} at submission time. *)

val set_speed_factor : t -> float -> unit
(** Gray-failure hook: stretch every subsequently submitted task by
    [factor] (a degraded node computing at [1/factor] speed). Must be
    finite and [>= 1]; [1.0] (the default and the exact-identity
    multiplier) restores nominal speed. Tasks already on a core keep
    their original cost — the factor models the machine slowing down,
    not history rewriting. *)

val speed_factor : t -> float

val set_trace : t -> Massbft_trace.Trace.t -> gid:int -> node:int -> unit
(** Attaches a trace sink and this CPU's owning node. Every subsequent
    {!submit} then emits ["cpu"]-category spans: a [wait] span when the
    job queues behind busy cores and a [run] span for its execution,
    both tagged with the chosen core. Defaults to the disabled sink. *)

val utilization : t -> since:float -> float
(** Fraction of core-time busy since virtual time [since] (diagnostic;
    in [0, 1] once the window is non-empty). Work is accounted at
    {!submit} time, so a window that admits a long task reports the
    whole task's cost even if it finishes later; 0 when the window is
    empty or inverted. *)

val busy_seconds : t -> float
(** Total core-seconds of work accepted so far. *)

val queue_depth : t -> int
(** Number of submitted tasks whose completion has not yet fired —
    running plus queued. The observability sampler polls this as the
    per-node CPU queue-depth gauge. *)
