(** The geo-distributed cluster fabric (paper §III-A): groups of nodes,
    one per data center, with fast LAN inside a group and per-node
    bandwidth-limited WAN between groups.

    [send] is the single transport primitive used by every protocol in
    this repository. A message crossing groups serializes through the
    sender's WAN uplink, propagates for half the inter-group RTT, then
    serializes through the receiver's WAN downlink; intra-group messages
    use the LAN interfaces. Crashed endpoints silently drop traffic
    (Byzantine behaviours are modeled in the protocol layer — equivocation
    and tampering are content decisions, not transport ones). *)

type addr = { g : int; n : int }
(** Node [n] of group [g]; both zero-based. [N_{i,j}] in the paper is
    [{ g = i; n = j }]. *)

val addr_to_string : addr -> string
val addr_equal : addr -> addr -> bool

type spec = {
  group_sizes : int array;  (** nodes per group; length = number of groups *)
  wan_bps : float;  (** default per-node WAN bandwidth, bits/s *)
  lan_bps : float;  (** per-node LAN bandwidth, bits/s *)
  rtt : int -> int -> float;
      (** [rtt g1 g2] in seconds, for [g1 <> g2]; must be symmetric *)
  lan_rtt : float;  (** intra-group round-trip, seconds *)
  cores : int;  (** CPU cores per node *)
}

val min_wan_one_way : spec -> float
(** Half the minimum inter-group RTT — the conservative lookahead a
    time-sharded sim of this cluster supports, since groups on
    different shards only interact through WAN propagation. [infinity]
    for a single-group spec. *)

type t

val create : Sim.t -> spec -> t
(** Builds the cluster on [sim]'s shards: group [g]'s NICs and CPU
    schedule onto shard [g mod n_shards], so with one shard per group
    the parallel driver never has two domains touching one queue. *)

val sim : t -> Sim.t

val shard_of : t -> int -> Sim.t
(** [shard_of t g] is the sim shard that owns group [g]'s events. *)

val n_groups : t -> int
val group_size : t -> int -> int
val nodes : t -> addr list
val group_nodes : t -> int -> addr list

val valid_addr : t -> addr -> bool

val send :
  ?bulk:bool -> t -> src:addr -> dst:addr -> bytes:int -> (unit -> unit) -> unit
(** [send t ~src ~dst ~bytes k] moves a [bytes]-sized message and runs
    [k] on delivery. The message is dropped (and [k] never runs) if
    [src] is crashed now or [dst] is crashed at delivery time. Sending
    to self delivers after the local processing latency with no NIC
    cost. [bulk] selects the NIC service class (see {!Nic.transmit}):
    entry payloads are bulk, consensus control traffic is not. *)

val set_trace : t -> Massbft_trace.Trace.t -> unit
(** Attaches a trace sink to every NIC and CPU in the cluster (see
    {!Nic.set_trace} and {!Cpu.set_trace}) and to the fabric itself,
    which then emits ["net"] propagation spans per inter-node message
    and ["topo"] instants on crash/recover. *)

val crash : t -> addr -> unit
val recover : t -> addr -> unit
val crash_group : t -> int -> unit
val recover_group : t -> int -> unit
val alive : t -> addr -> bool

val cpu : t -> addr -> Cpu.t
(** The node's compute queue, for the protocol's cost model. *)

val cores : t -> int
(** CPU cores per node (uniform across the cluster). *)

val set_wan_bandwidth : t -> addr -> float -> unit
(** Reconfigures one node's WAN up and down links (Figure 14). *)

val set_lan_bandwidth : t -> addr -> float -> unit
(** Reconfigures one node's LAN up and down links (degradation
    experiments; takes effect for subsequent transmissions, like
    {!Nic.set_bandwidth}). *)

(** {1 Link fault injection}

    The chaos layer interposes on {!send} through a single optional
    hook, consulted once per non-loopback message before the sender's
    NIC. With no hook installed (the default) the send path is
    unchanged — fault-free runs stay bit-identical. *)

type send_fault =
  | Net_drop  (** vanish at the sender's egress; no bandwidth consumed *)
  | Net_delay of float  (** add seconds to the propagation leg *)
  | Net_dup of { copies : int; spacing_s : float }
      (** re-deliver the payload [copies] extra times after the
          original, [spacing_s] apart (receive-side duplication: the
          NIC serializes the bytes once, as with a transport-level
          retransmit). Each extra delivery is still gated on the
          destination being up at its own delivery time. *)

type fault_hook =
  src:addr -> dst:addr -> bulk:bool -> bytes:int -> now:float ->
  send_fault option
(** [now] is the sender's current virtual time, so a hook can make
    window decisions ([at <= now < at + for_s]) statelessly — the form
    that stays deterministic under the parallel driver, where hooks run
    concurrently on the sending group's shard. *)

val set_fault_hook : t -> fault_hook option -> unit
(** Installs (or clears) the link-fault hook. The hook must be
    deterministic for reproducible runs — decide from its arguments and
    its own seeded state, never from wall-clock or global randomness. *)

val faults_dropped : t -> int
(** Messages dropped by the hook since creation. *)

val faults_delayed : t -> int

val faults_duplicated : t -> int
(** Messages the hook duplicated (original deliveries, not copies). *)

val wan_bytes_sent : t -> int
(** Total bytes accepted by all WAN uplinks since creation. *)

val wan_bytes_sent_of : t -> addr -> int
val lan_bytes_sent : t -> int

val reset_traffic_baseline : t -> unit
(** Zeroes the traffic counters' logical origin so a measurement window
    can exclude warm-up traffic. *)

val wan_uplink_backlog_s : t -> addr -> float
(** Seconds of queued transmission on the node's WAN uplink (0 when
    idle) — the congestion diagnostic. Covers both service classes
    (the maximum over the bulk and control queues, which serialize
    independently — see {!Nic.backlog_s}). *)

(** {1 Read-only interface access}

    The observability sampler polls individual NICs for busy-fraction
    and backlog; these accessors expose them without widening the
    mutable surface. *)

type link = Wan_up | Wan_down | Lan_up | Lan_down

val link_to_string : link -> string
(** ["wan_up"], ["wan_down"], ["lan_up"], ["lan_down"] — matches the
    link labels used by tracing. *)

val all_links : link list
(** The four links in a fixed order (WAN before LAN, up before down). *)

val nic : t -> addr -> link -> Nic.t
(** The node's NIC for one link direction. Callers must treat it as
    read-only: transmissions go through {!send}. *)
