(** The discrete-event simulation core.

    All protocol, network and CPU activity in this repository runs on
    virtual time driven by this event loop. Events at equal timestamps
    fire in insertion order, making every run bit-for-bit reproducible
    from its RNG seeds — which the test suite exploits to assert
    protocol-level invariants over thousands of schedules. *)

type t

type timer
(** A cancellable handle for a scheduled event. *)

val create : unit -> t

val now : t -> float
(** Current virtual time in seconds. *)

val set_trace : t -> Massbft_trace.Trace.t -> unit
(** Attaches a trace sink; the dispatcher then emits sampled
    ["sim"]-category counters (events dispatched, events pending) at
    most every 100 simulated ms. Tracing never schedules events, so it
    cannot change the simulation. Defaults to the disabled
    {!Massbft_trace.Trace.null}. *)

val dispatched : t -> int
(** Events fired since creation (cancelled events excluded). *)

val at : t -> float -> (unit -> unit) -> timer
(** [at t time f] schedules [f] to run at absolute virtual [time].
    Raises [Invalid_argument] if [time] is in the past. *)

val after : t -> float -> (unit -> unit) -> timer
(** [after t delay f] schedules [f] in [delay >= 0] seconds. *)

val cancel : timer -> unit
(** Cancelling an already-fired or cancelled timer is a no-op.
    Cancelled events are lazily deleted: they stay in the queue until
    popped, but once they outnumber the live events the queue compacts
    them away in one O(n) pass, so cancel is amortized O(1) and queue
    size tracks live events rather than lifetime scheduling volume. *)

val pending : t -> int
(** Number of scheduled (uncancelled, unfired) events. Maintained
    incrementally — O(1), safe to poll from samplers and probes. *)

val heap_size : t -> int
(** Physical size of the underlying event heap, including cancelled
    events awaiting compaction. Exposed so tests can assert the
    lazy-deletion bound ([heap_size <= 2 * pending + slack]); use
    {!pending} for the semantic count. *)

val run : t -> until:float -> unit
(** Executes events in timestamp order until the queue is empty or the
    next event is beyond [until]; then advances the clock to [until]. *)

val run_until_idle : t -> ?limit:int -> unit -> unit
(** Executes events until none remain. [limit] (default 100 million)
    bounds the number of events as a runaway guard; exceeding it raises
    [Failure]. *)

val step : t -> bool
(** Executes the single next event; [false] when the queue is empty. *)
