(** The discrete-event simulation core.

    All protocol, network and CPU activity in this repository runs on
    virtual time driven by this event loop. Events at equal timestamps
    fire in insertion order, making every run bit-for-bit reproducible
    from its RNG seeds — which the test suite exploits to assert
    protocol-level invariants over thousands of schedules.

    The simulator is time-sharded: [create ~shards:n] builds [n] shards,
    each owning its own event heap, clock and dispatch accounting, glued
    together by a coordinator. The default sequential driver ({!run})
    pops the globally minimal (time, seq) event across all shards and is
    bit-identical to the historical single-heap scheduler. The parallel
    driver ({!run_parallel}) advances all shards in lockstep windows of
    [lookahead] simulated seconds on one OCaml domain per shard, which
    is safe when every cross-shard interaction ({!post}) carries at
    least [lookahead] seconds of propagation latency — the conservative
    synchronization argument of classic parallel DES, instantiated here
    with the minimum WAN latency between groups. *)

type t
(** A shard handle. A single-shard sim ([create ()]) behaves exactly
    like the historical global scheduler; all shards of one sim share a
    coordinator, and any handle can drive {!run}. *)

type timer
(** A cancellable handle for a scheduled event. *)

val create : ?shards:int -> ?lookahead:float -> unit -> t
(** [create ~shards ~lookahead ()] builds a simulator with [shards]
    (default 1) shards and the given conservative window length in
    simulated seconds (default 0, meaning the parallel driver is
    unavailable); returns shard 0. Raises [Invalid_argument] on
    [shards < 1] or a negative lookahead. *)

val shard : t -> int -> t
(** [shard t i] is shard [i] of [t]'s simulator.
    Raises [Invalid_argument] if out of range. *)

val n_shards : t -> int
val shard_id : t -> int

val lookahead : t -> float
(** The conservative window length this sim was created with. *)

val now : t -> float
(** Current virtual time in seconds. Under the sequential driver this is
    the one global clock regardless of which shard handle is queried;
    inside a parallel worker it is the executing shard's clock, and in a
    barrier callback it is the window edge all clocks are synced to. *)

val set_trace : t -> Massbft_trace.Trace.t -> unit
(** Attaches a trace sink (shared by all shards); the dispatcher then
    emits sampled ["sim"]-category counters (events dispatched, events
    pending) at most every 100 simulated ms per shard. Multi-shard sims
    tag each shard's counter track with [gid = shard id] so every track
    stays monotone in the merged export. Tracing never schedules events,
    so it cannot change the simulation. Defaults to the disabled
    {!Massbft_trace.Trace.null}. *)

(** {1 Host-side self-profiling hooks}

    Where [set_trace] records {e simulated} time, [set_prof] accounts
    where the {e host's} wall-clock goes while the simulator runs —
    the instrument for evaluating the evaluator. The simulator calls
    the sink at phase boundaries only (a handful of calls per window,
    never per event); with the default [None] every driver loop is
    exactly the uninstrumented code path. Attaching a profiler never
    schedules events or reads simulation state, so profiled runs stay
    byte-identical to unprofiled ones (golden-fixture verified).

    Threading contract: [hp_execute] / [hp_stall] are called from
    worker domains (each [sid] or [worker] slot by exactly one domain
    per window); [hp_coord] / [hp_merge] / [hp_window] / [hp_seq] from
    the driving thread between barriers, when all workers are parked.
    The window barrier's mutex gives the happens-before edge that
    makes worker-written accumulators safe to read from [hp_window]. *)

type host_prof = {
  hp_clock : unit -> float;
      (** host-time source in seconds; must be monotonic *)
  hp_execute : sid:int -> dt:float -> events:int -> unit;
      (** one shard's event execution within one parallel window *)
  hp_stall : worker:int -> dt:float -> unit;
      (** one worker's barrier wait before entering a window (includes
          the coordinator's inter-window merge, which is stall from the
          worker's perspective); the final shutdown park is excluded *)
  hp_coord : dt:float -> unit;
      (** coordinator: next-window scan, setup and worker release *)
  hp_merge : dt:float -> unit;
      (** coordinator: mailbox drain, clock advance, [on_window] *)
  hp_window : w_end:float -> span:float -> wall:float -> unit;
      (** a parallel window completed: [span] is the coordinator-side
          wait-for-workers segment, [wall] the whole window such that
          [wall = coord + span + merge] up to clock resolution *)
  hp_seq : until:float -> dt:float -> events:int -> unit;
      (** one profiled slice of the sequential merge driver (sliced at
          lookahead width when the sim has one, else the whole range) *)
}

val set_prof : t -> host_prof option -> unit
(** Attaches (or clears) the host-profiling sink, shared by all
    shards. Raises [Invalid_argument] while the parallel driver is
    active. *)

val dispatched : t -> int
(** Events fired on this shard since creation (cancelled excluded). *)

val dispatched_total : t -> int
(** Events fired across all shards. *)

val at : t -> float -> (unit -> unit) -> timer
(** [at t time f] schedules [f] to run at absolute virtual [time].
    Raises [Invalid_argument] if [time] is in the past. Inside a
    parallel worker the event is scheduled onto the {e executing} shard
    (a timer armed by shard [s]'s event runs on [s], whichever handle
    the caller holds); use {!post} for targeted cross-shard delivery. *)

val after : t -> float -> (unit -> unit) -> timer
(** [after t delay f] schedules [f] in [delay >= 0] seconds from the
    caller's current time (the executing shard's clock when inside a
    parallel worker). *)

val post : t -> float -> (unit -> unit) -> unit
(** [post t time f] schedules [f] at [time] on shard [t] specifically —
    the cross-shard delivery primitive. From a parallel worker on
    another shard it enqueues into [t]'s mailbox, stamped
    (time, source shard, per-source seq) so the merge order is a total
    order independent of domain interleaving; the conservative window
    contract requires [time] to lie at or beyond the current window's
    end (i.e. the propagation latency must be >= the lookahead), and a
    violation raises [Invalid_argument]. Posted events cannot be
    cancelled. Sequentially this is equivalent to [at]. *)

val cancel : timer -> unit
(** Cancelling an already-fired or cancelled timer is a no-op.
    Cancelled events are lazily deleted: they stay in the queue until
    popped, but once they outnumber the live events the queue compacts
    them away in one O(n) pass, so cancel is amortized O(1) and queue
    size tracks live events rather than lifetime scheduling volume. *)

val pending : t -> int
(** Number of scheduled (uncancelled, unfired) events on this shard.
    Maintained incrementally — O(1), safe to poll from samplers. *)

val pending_total : t -> int
(** Scheduled events across all shards. *)

val heap_size : t -> int
(** Physical size of this shard's event heap, including cancelled
    events awaiting compaction. Exposed so tests can assert the
    lazy-deletion bound ([heap_size <= 2 * pending + slack]); use
    {!pending} for the semantic count. *)

val heap_size_total : t -> int
(** Physical heap size across all shards. *)

val run : t -> until:float -> unit
(** The sequential driver: executes events in global (time, seq) order
    across all shards until every queue is empty or the next event is
    beyond [until]; then advances all clocks to [until]. Dispatch order
    is bit-identical to the historical single-heap scheduler. *)

val run_parallel :
  t ->
  domains:int ->
  until:float ->
  ?on_window:(float -> unit) ->
  unit ->
  unit
(** The parallel driver: advances all shards in lockstep windows of
    [lookahead] simulated seconds, running min(domains, shards) OCaml
    domains with a barrier per window, at which cross-shard mailboxes
    are drained in deterministic (time, src, seq) order and all shard
    clocks sync to the window edge. [on_window] runs single-threaded at
    each barrier with the window's end time — the safe point for
    invariant checks. Events exactly at [until] run through the
    sequential driver after the last window (windows are half-open).
    Requires a positive finite lookahead and no attached trace sink.
    Within-shard execution order is deterministic and independent of
    [domains]; cross-shard FIFO ties at exactly equal timestamps may
    order differently than the sequential driver (protocol results are
    compared by the cross-driver equivalence tests instead of byte
    identity). *)

val run_until_idle : t -> ?limit:int -> unit -> unit
(** Executes events (across all shards) until none remain. [limit]
    (default 100 million) bounds the number of events as a runaway
    guard; exceeding it raises [Failure]. *)

val step : t -> bool
(** Executes the single globally next event; [false] when empty. *)
