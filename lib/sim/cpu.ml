module Trace = Massbft_trace.Trace

type t = {
  sim : Sim.t;
  cores : float array; (* per-core next-free time *)
  mutable busy : float;
  mutable in_flight : int; (* submitted, completion not yet fired *)
  mutable speed_factor : float; (* >= 1 stretches every submitted task *)
  mutable trace : Trace.t;
  mutable tr_gid : int;
  mutable tr_node : int;
}

let create sim ~cores =
  if cores < 1 then invalid_arg "Cpu.create: need at least one core";
  {
    sim;
    cores = Array.make cores 0.0;
    busy = 0.0;
    in_flight = 0;
    speed_factor = 1.0;
    trace = Trace.null;
    tr_gid = -1;
    tr_node = -1;
  }

let set_trace t tr ~gid ~node =
  t.trace <- tr;
  t.tr_gid <- gid;
  t.tr_node <- node

let earliest_core t =
  let best = ref 0 in
  for i = 1 to Array.length t.cores - 1 do
    if t.cores.(i) < t.cores.(!best) then best := i
  done;
  !best

let set_speed_factor t f =
  if f < 1.0 || not (Float.is_finite f) then
    invalid_arg "Cpu.set_speed_factor: factor must be finite and >= 1";
  t.speed_factor <- f

let speed_factor t = t.speed_factor

let submit t ~seconds k =
  if seconds < 0.0 then invalid_arg "Cpu.submit: negative duration";
  let seconds = seconds *. t.speed_factor in
  let core = earliest_core t in
  let now = Sim.now t.sim in
  let start = Float.max now t.cores.(core) in
  let finish = start +. seconds in
  t.cores.(core) <- finish;
  t.busy <- t.busy +. seconds;
  t.in_flight <- t.in_flight + 1;
  if Trace.enabled t.trace then begin
    if start > now then
      Trace.span t.trace ~cat:"cpu" ~gid:t.tr_gid ~node:t.tr_node
        ~args:[ ("core", Trace.Int core) ]
        ~b:now ~e:start "wait";
    if seconds > 0.0 then
      Trace.span t.trace ~cat:"cpu" ~gid:t.tr_gid ~node:t.tr_node
        ~args:[ ("core", Trace.Int core) ]
        ~b:start ~e:finish "run"
  end;
  ignore
    (Sim.at t.sim finish (fun () ->
         t.in_flight <- t.in_flight - 1;
         k ()))

let queue_depth t = t.in_flight

let utilization t ~since =
  let elapsed = Sim.now t.sim -. since in
  if elapsed <= 0.0 then 0.0
  else
    let capacity = elapsed *. float_of_int (Array.length t.cores) in
    Float.min 1.0 (t.busy /. capacity)

let busy_seconds t = t.busy
