module Trace = Massbft_trace.Trace

type addr = { g : int; n : int }

let addr_to_string a = Printf.sprintf "g%d/n%d" a.g a.n
let addr_equal a b = a.g = b.g && a.n = b.n

type spec = {
  group_sizes : int array;
  wan_bps : float;
  lan_bps : float;
  rtt : int -> int -> float;
  lan_rtt : float;
  cores : int;
}

type node_state = {
  wan_up : Nic.t;
  wan_down : Nic.t;
  lan_up : Nic.t;
  lan_down : Nic.t;
  cpu : Cpu.t;
  mutable up : bool;
}

type send_fault =
  | Net_drop
  | Net_delay of float
  | Net_dup of { copies : int; spacing_s : float }

type fault_hook =
  src:addr -> dst:addr -> bulk:bool -> bytes:int -> now:float ->
  send_fault option

type t = {
  sim : Sim.t;
  spec : spec;
  nodes : node_state array array;
  mutable wan_baseline : int;
  mutable lan_baseline : int;
  mutable fault_hook : fault_hook option;
  faults_dropped : int Atomic.t;
  faults_delayed : int Atomic.t;
  faults_duplicated : int Atomic.t;
  mutable trace : Trace.t;
}

(* The conservative lookahead a sharded sim of this cluster supports:
   groups on different shards only interact through WAN propagation, so
   half the minimum inter-group RTT bounds how far any shard can run
   ahead without missing an incoming event. [infinity] for one group. *)
let min_wan_one_way spec =
  let ng = Array.length spec.group_sizes in
  let m = ref infinity in
  for g = 0 to ng - 1 do
    for h = 0 to ng - 1 do
      if g <> h then m := Float.min !m (spec.rtt g h /. 2.0)
    done
  done;
  !m

let create sim spec =
  if Array.length spec.group_sizes = 0 then
    invalid_arg "Topology.create: need at least one group";
  Array.iter
    (fun s ->
      if s < 1 then invalid_arg "Topology.create: empty group")
    spec.group_sizes;
  if spec.lan_rtt < 0.0 then invalid_arg "Topology.create: negative lan_rtt";
  (* Each group lives on one shard (round-robin when there are fewer
     shards than groups): its NICs and CPU schedule onto that shard, so
     the parallel driver never has two domains touching one queue. *)
  let shard_sim g = Sim.shard sim (g mod Sim.n_shards sim) in
  let mk_node g =
    let sim = shard_sim g in
    {
      wan_up = Nic.create sim ~bandwidth_bps:spec.wan_bps;
      wan_down = Nic.create sim ~bandwidth_bps:spec.wan_bps;
      lan_up = Nic.create sim ~bandwidth_bps:spec.lan_bps;
      lan_down = Nic.create sim ~bandwidth_bps:spec.lan_bps;
      cpu = Cpu.create sim ~cores:spec.cores;
      up = true;
    }
  in
  let nodes =
    Array.mapi
      (fun g size -> Array.init size (fun _ -> mk_node g))
      spec.group_sizes
  in
  {
    sim;
    spec;
    nodes;
    wan_baseline = 0;
    lan_baseline = 0;
    fault_hook = None;
    faults_dropped = Atomic.make 0;
    faults_delayed = Atomic.make 0;
    faults_duplicated = Atomic.make 0;
    trace = Trace.null;
  }

let sim t = t.sim
let n_groups t = Array.length t.nodes
let shard_of t g = Sim.shard t.sim (g mod Sim.n_shards t.sim)

let group_size t g =
  if g < 0 || g >= n_groups t then invalid_arg "Topology.group_size: bad group";
  Array.length t.nodes.(g)

let valid_addr t a =
  a.g >= 0 && a.g < n_groups t && a.n >= 0 && a.n < Array.length t.nodes.(a.g)

let state t a =
  if not (valid_addr t a) then
    invalid_arg (Printf.sprintf "Topology: invalid address %s" (addr_to_string a));
  t.nodes.(a.g).(a.n)

let group_nodes t g =
  List.init (group_size t g) (fun n -> { g; n })

let nodes t =
  List.concat (List.init (n_groups t) (fun g -> group_nodes t g))

let set_trace t tr =
  t.trace <- tr;
  Array.iteri
    (fun g group ->
      Array.iteri
        (fun n st ->
          Nic.set_trace st.wan_up tr ~gid:g ~node:n ~link:"wan_up";
          Nic.set_trace st.wan_down tr ~gid:g ~node:n ~link:"wan_down";
          Nic.set_trace st.lan_up tr ~gid:g ~node:n ~link:"lan_up";
          Nic.set_trace st.lan_down tr ~gid:g ~node:n ~link:"lan_down";
          Cpu.set_trace st.cpu tr ~gid:g ~node:n)
        group)
    t.nodes

let alive t a = (state t a).up

let crash t a =
  (state t a).up <- false;
  Trace.instant t.trace ~cat:"topo" ~gid:a.g ~node:a.n "node_down"

let recover t a =
  (state t a).up <- true;
  Trace.instant t.trace ~cat:"topo" ~gid:a.g ~node:a.n "node_up"
let crash_group t g = List.iter (crash t) (group_nodes t g)
let recover_group t g = List.iter (recover t) (group_nodes t g)
let cpu t a = (state t a).cpu
let cores t = t.spec.cores

let set_wan_bandwidth t a bps =
  let s = state t a in
  Nic.set_bandwidth s.wan_up bps;
  Nic.set_bandwidth s.wan_down bps

let set_lan_bandwidth t a bps =
  let s = state t a in
  Nic.set_bandwidth s.lan_up bps;
  Nic.set_bandwidth s.lan_down bps

let set_fault_hook t hook = t.fault_hook <- hook
let faults_dropped t = Atomic.get t.faults_dropped
let faults_delayed t = Atomic.get t.faults_delayed
let faults_duplicated t = Atomic.get t.faults_duplicated

(* Local processing latency for a loopback delivery: one event-loop hop,
   effectively immediate but strictly causal. *)
let loopback_latency = 1e-6

let send ?(bulk = false) t ~src ~dst ~bytes k =
  let src_state = state t src and dst_state = state t dst in
  if bytes < 0 then invalid_arg "Topology.send: negative size";
  if not src_state.up then ()
  else if addr_equal src dst then
    Sim.post (shard_of t dst.g)
      (Sim.now t.sim +. loopback_latency)
      (fun () -> if dst_state.up then k ())
  else begin
    (* Injected link faults (chaos testing). The hook is [None] outside
       fault experiments, so the fault-free path costs one match. A
       dropped message vanishes at the sender's egress (no bandwidth is
       consumed); a delay stretches propagation; a duplicate re-delivers
       the payload after the original (receive-side duplication — the
       NIC serialized it once, as with a transport-level retransmit). *)
    let verdict =
      match t.fault_hook with
      | None -> None
      | Some hook -> hook ~src ~dst ~bulk ~bytes ~now:(Sim.now t.sim)
    in
    match verdict with
    | Some Net_drop -> Atomic.incr t.faults_dropped
    | (None | Some (Net_delay _) | Some (Net_dup _)) as verdict ->
        let extra_delay, dup =
          match verdict with
          | Some (Net_delay d) when d > 0.0 ->
              Atomic.incr t.faults_delayed;
              (d, None)
          | Some (Net_dup { copies; spacing_s }) when copies > 0 ->
              Atomic.incr t.faults_duplicated;
              (0.0, Some (copies, Float.max spacing_s loopback_latency))
          | _ -> (0.0, None)
        in
        let up, down, one_way =
          if src.g = dst.g then
            (src_state.lan_up, dst_state.lan_down, t.spec.lan_rtt /. 2.0)
          else begin
            let rtt = t.spec.rtt src.g dst.g in
            if rtt < 0.0 then invalid_arg "Topology.send: negative WAN rtt";
            (src_state.wan_up, dst_state.wan_down, rtt /. 2.0)
          end
        in
        let one_way = one_way +. extra_delay in
        (* Store-and-forward: uplink serialization, propagation, downlink
           serialization, then delivery (if the receiver is still up).
           The propagation leg is the only shard crossing: it posts the
           downlink arrival onto the destination group's shard at an
           absolute time computed from the sender's clock, which the WAN
           latency floor keeps at or beyond the parallel lookahead. *)
        let dst_sim = shard_of t dst.g in
        Nic.transmit ~bulk up ~bytes (fun () ->
            let tnow = Sim.now t.sim in
            if Trace.enabled t.trace then
              Trace.span t.trace ~cat:"net" ~gid:src.g ~node:src.n
                ~args:
                  [ ("dst", Trace.Str (addr_to_string dst));
                    ("bytes", Trace.Int bytes) ]
                ~b:tnow ~e:(tnow +. one_way) "propagate";
            Sim.post dst_sim (tnow +. one_way) (fun () ->
                Nic.transmit ~bulk down ~bytes (fun () ->
                    let deliver () = if dst_state.up then k () in
                    deliver ();
                    match dup with
                    | None -> ()
                    | Some (copies, spacing) ->
                        for i = 1 to copies do
                          ignore
                            (Sim.after t.sim
                               (spacing *. float_of_int i)
                               deliver)
                        done)))
  end

let sum_over t f =
  Array.fold_left
    (fun acc group -> Array.fold_left (fun acc n -> acc + f n) acc group)
    0 t.nodes

let wan_bytes_sent t = sum_over t (fun n -> Nic.bytes_sent n.wan_up) - t.wan_baseline
let wan_bytes_sent_of t a = Nic.bytes_sent (state t a).wan_up
let lan_bytes_sent t = sum_over t (fun n -> Nic.bytes_sent n.lan_up) - t.lan_baseline

let wan_uplink_backlog_s t a = Nic.backlog_s (state t a).wan_up

type link = Wan_up | Wan_down | Lan_up | Lan_down

let link_to_string = function
  | Wan_up -> "wan_up"
  | Wan_down -> "wan_down"
  | Lan_up -> "lan_up"
  | Lan_down -> "lan_down"

let all_links = [ Wan_up; Wan_down; Lan_up; Lan_down ]

let nic t a link =
  let s = state t a in
  match link with
  | Wan_up -> s.wan_up
  | Wan_down -> s.wan_down
  | Lan_up -> s.lan_up
  | Lan_down -> s.lan_down

let reset_traffic_baseline t =
  t.wan_baseline <- sum_over t (fun n -> Nic.bytes_sent n.wan_up);
  t.lan_baseline <- sum_over t (fun n -> Nic.bytes_sent n.lan_up)
