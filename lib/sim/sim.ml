module Heap = Massbft_util.Heap
module Trace = Massbft_trace.Trace

(* The simulator is time-sharded: every shard owns an event heap, a
   clock, and dispatch/trace accounting, and a thin coordinator advances
   the shards either sequentially (popping the globally minimal
   (time, seq) event across heaps — bit-identical to the historical
   single-heap scheduler, whose order was exactly that total order) or
   in parallel lockstep windows bounded by the lookahead (the minimum
   cross-shard propagation latency). Cross-shard communication goes
   through per-shard mailboxes stamped (time, src shard, per-source
   seq); the stamp is a total order independent of how domain execution
   interleaves, so parallel runs are deterministic. *)

(* The timer handle carries a back-reference to its shard so [cancel]
   can maintain the live/garbage accounting without widening the public
   [cancel : timer -> unit] signature. *)
type timer = { mutable cancelled : bool; mutable fired : bool; owner : t }

and event = { time : float; seq : int; handle : timer; fn : unit -> unit }

(* A cross-shard message awaiting the next window barrier. [p_seq] is
   incremented only by the posting shard's own domain, in its (already
   deterministic) event execution order, so sorting a drained inbox by
   (p_time, p_src, p_seq) reconstructs the same arrival order on every
   run regardless of scheduling interleave. *)
and post = { p_time : float; p_src : int; p_seq : int; p_fn : unit -> unit }

and t = {
  sid : int;
  coord : coord;
  mutable clock : float;  (* shard-local clock; authoritative in parallel mode *)
  queue : event Heap.t;
  mutable local_seq : int;  (* seq source while the parallel driver runs *)
  mutable live : int;  (* scheduled, neither cancelled nor fired *)
  mutable garbage : int;  (* cancelled events still sitting in the heap *)
  mutable dispatched : int;
  mutable last_trace_at : float;
  inbox_mu : Mutex.t;
  mutable inbox : post list;  (* newest first; drained at barriers *)
  mutable post_seq : int;
}

and coord = {
  mutable shards : t array;
  lookahead : float;
  mutable next_seq : int;  (* global seq source in sequential mode *)
  mutable gclock : float;  (* global clock, authoritative in sequential mode *)
  mutable parallel : bool;
  mutable window_end : float;  (* current parallel window's exclusive end *)
  mutable trace : Trace.t;
  mutable prof : host_prof option;
}

(* Host-side self-profiling sink. The simulator never reads the host
   clock or accounts wall time itself — it calls these hooks at phase
   boundaries (a handful of calls per window, never per event) and a
   profiler aggregates. [None] (the default) keeps every driver loop
   exactly as fast and as allocation-free as an uninstrumented build.

   Threading contract: [hp_execute] and [hp_stall] run on worker
   domains (each [sid] / [worker] slot is touched by exactly one
   domain per window); [hp_coord], [hp_merge], [hp_window] and
   [hp_seq] run on the driving thread between barriers, when all
   workers are parked — the same safe point as [run_parallel]'s
   [on_window]. *)
and host_prof = {
  hp_clock : unit -> float;
      (* host time in seconds; must be monotonic *)
  hp_execute : sid:int -> dt:float -> events:int -> unit;
      (* one shard's event execution within one parallel window *)
  hp_stall : worker:int -> dt:float -> unit;
      (* one worker's barrier wait before being released into a window *)
  hp_coord : dt:float -> unit;
      (* coordinator: next-window scan + setup + worker release *)
  hp_merge : dt:float -> unit;
      (* coordinator: mailbox drain + clock advance + on_window *)
  hp_window : w_end:float -> span:float -> wall:float -> unit;
      (* one parallel window completed: [span] is the coordinator-side
         wait-for-workers segment (the parallel execute region), [wall]
         the window's total coordinator wall time *)
  hp_seq : until:float -> dt:float -> events:int -> unit;
      (* one profiled slice of the sequential merge driver *)
}

(* Hand-specialized (time, seq) order: this comparison runs on every
   sift of every heap operation, and the polymorphic [compare] would
   take the generic structural-comparison path for both fields. *)
let compare_event a b =
  if a.time < b.time then -1
  else if a.time > b.time then 1
  else Stdlib.Int.compare a.seq b.seq

let create ?(shards = 1) ?(lookahead = 0.0) () =
  if shards < 1 then invalid_arg "Sim.create: shards must be >= 1";
  if lookahead < 0.0 then invalid_arg "Sim.create: negative lookahead";
  let coord =
    {
      shards = [||];
      lookahead;
      next_seq = 0;
      gclock = 0.0;
      parallel = false;
      window_end = 0.0;
      trace = Trace.null;
      prof = None;
    }
  in
  coord.shards <-
    Array.init shards (fun sid ->
        {
          sid;
          coord;
          clock = 0.0;
          queue = Heap.create ~cmp:compare_event;
          local_seq = 0;
          live = 0;
          garbage = 0;
          dispatched = 0;
          last_trace_at = neg_infinity;
          inbox_mu = Mutex.create ();
          inbox = [];
          post_seq = 0;
        });
  coord.shards.(0)

let shard t i =
  let shards = t.coord.shards in
  if i < 0 || i >= Array.length shards then
    invalid_arg (Printf.sprintf "Sim.shard: no shard %d" i);
  shards.(i)

let n_shards t = Array.length t.coord.shards
let shard_id t = t.sid
let lookahead t = t.coord.lookahead

(* Which shard the current domain is executing events for. Workers set
   it around each window; on the coordinator thread (and in sequential
   mode, where no worker ever runs) it stays [None]. *)
let current_shard : t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let executing_shard coord =
  if not coord.parallel then None
  else
    match Domain.DLS.get current_shard with
    | Some s when s.coord == coord -> Some s
    | _ -> None

let now t =
  let coord = t.coord in
  if coord.parallel then
    match executing_shard coord with
    | Some s -> s.clock
    | None -> t.clock (* barrier callbacks: clocks are synced to the edge *)
  else coord.gclock

let set_trace t tr = t.coord.trace <- tr

let set_prof t p =
  if t.coord.parallel then
    invalid_arg "Sim.set_prof: parallel driver active";
  t.coord.prof <- p

let dispatched t = t.dispatched

let sum_shards t f =
  Array.fold_left (fun acc s -> acc + f s) 0 t.coord.shards

let dispatched_total t = sum_shards t (fun s -> s.dispatched)

(* Sampling period for the dispatch-rate counter: often enough to see
   load swings in a trace viewer, rare enough not to crowd the ring
   buffer. Emitting a counter never schedules anything, so tracing
   cannot perturb the event order. *)
let trace_counter_period = 0.1

let push_local s time fn =
  let handle = { cancelled = false; fired = false; owner = s } in
  let seq =
    (* Sequential mode allocates from the coordinator so the merged
       dispatch order is the single-heap order; parallel mode allocates
       per shard (each counter touched only by its owning domain),
       seeded above every sequential seq so FIFO-at-equal-time ordering
       against pre-existing events is preserved. *)
    if s.coord.parallel then begin
      let q = s.local_seq in
      s.local_seq <- q + 1;
      q
    end
    else begin
      let q = s.coord.next_seq in
      s.coord.next_seq <- q + 1;
      q
    end
  in
  Heap.push s.queue { time; seq; handle; fn };
  s.live <- s.live + 1;
  handle

let at t time fn =
  (* Inside a parallel worker, events belong to the shard whose event
     set them — a timer armed while executing shard [s] runs on [s]
     regardless of which shard handle the caller kept around. Targeted
     cross-shard delivery goes through [post]. *)
  let s =
    match executing_shard t.coord with Some s -> s | None -> t
  in
  let base = now t in
  if time < base then
    invalid_arg
      (Printf.sprintf "Sim.at: scheduling in the past (%.9f < %.9f)" time
         base);
  push_local s time fn

let after t delay fn =
  if delay < 0.0 then invalid_arg "Sim.after: negative delay";
  at t (now t +. delay) fn

let post t time fn =
  match executing_shard t.coord with
  | Some s when s != t ->
      (* Cross-shard: enqueue into the destination mailbox. The
         conservative window invariant guarantees the arrival lies at
         or beyond the current window's end, i.e. in a future window. *)
      let coord = t.coord in
      if time < coord.window_end then
        invalid_arg
          (Printf.sprintf
             "Sim.post: lookahead violation (%.9f < window end %.9f)" time
             coord.window_end);
      let p_seq = s.post_seq in
      s.post_seq <- p_seq + 1;
      let p = { p_time = time; p_src = s.sid; p_seq; p_fn = fn } in
      Mutex.lock t.inbox_mu;
      t.inbox <- p :: t.inbox;
      Mutex.unlock t.inbox_mu
  | _ ->
      if time < now t then
        invalid_arg
          (Printf.sprintf "Sim.post: scheduling in the past (%.9f < %.9f)"
             time (now t));
      ignore (push_local t time fn)

(* Below this size an occasional linear pop-through of garbage is
   cheaper than rebuilding; above it, compaction keeps pop cost and
   memory proportional to live events. *)
let compaction_min_size = 64

let cancel handle =
  if not handle.cancelled && not handle.fired then begin
    handle.cancelled <- true;
    let t = handle.owner in
    t.live <- t.live - 1;
    t.garbage <- t.garbage + 1;
    (* Lazy deletion with bounded slack: once cancelled entries are the
       majority of the heap, evict them all in one O(n) rebuild. Each
       rebuild is paid for by the >= n/2 cancellations since the last
       one, so cancel stays amortized O(1) (plus the O(log n) saved on
       every later pop). Pop order of survivors is untouched — the
       (time, seq) comparator is a total order — so a compacted run
       dispatches bit-identically to an uncompacted one. *)
    if t.garbage > t.live && Heap.length t.queue >= compaction_min_size then begin
      Heap.filter_in_place t.queue (fun e -> not e.handle.cancelled);
      t.garbage <- 0
    end
  end

let pending t = t.live
let pending_total t = sum_shards t (fun s -> s.live)
let heap_size t = Heap.length t.queue
let heap_size_total t = sum_shards t (fun s -> Heap.length s.queue)

let fire s e =
  s.clock <- e.time;
  let coord = s.coord in
  if not coord.parallel then coord.gclock <- e.time;
  if e.handle.cancelled then s.garbage <- s.garbage - 1
  else begin
    e.handle.fired <- true;
    s.live <- s.live - 1;
    s.dispatched <- s.dispatched + 1;
    let tr = coord.trace in
    if Trace.enabled tr && e.time -. s.last_trace_at >= trace_counter_period
    then begin
      (* One throttle per shard, and on multi-shard sims one counter
         track per shard (gid = shard id): each track is emitted from
         its own monotonically advancing clock, so the merged Perfetto
         export never steps a track's timestamps backwards. *)
      s.last_trace_at <- e.time;
      let gid = if Array.length coord.shards = 1 then None else Some s.sid in
      Trace.counter tr ~ts:e.time ~cat:"sim" ?gid "dispatched"
        (float_of_int s.dispatched);
      Trace.counter tr ~ts:e.time ~cat:"sim" ?gid "pending"
        (float_of_int s.live)
    end;
    e.fn ()
  end

(* Pop and fire the globally minimal (time, seq) event across shards —
   exactly the order the historical single-heap scheduler dispatched,
   since sequential-mode seqs come from one coordinator counter. *)
let seq_step coord ~until =
  let best = ref None in
  Array.iter
    (fun s ->
      match Heap.peek s.queue with
      | None -> ()
      | Some e -> (
          match !best with
          | Some (_, be) when compare_event be e <= 0 -> ()
          | _ -> best := Some (s, e)))
    coord.shards;
  match !best with
  | Some (s, e) when e.time <= until ->
      ignore (Heap.pop s.queue);
      fire s e;
      true
  | _ -> false

let advance_clocks coord until =
  if coord.gclock < until then coord.gclock <- until;
  Array.iter
    (fun s -> if s.clock < until then s.clock <- until)
    coord.shards

let run_plain coord ~until =
  if Array.length coord.shards = 1 then begin
    let s = coord.shards.(0) in
    let continue = ref true in
    while !continue do
      match Heap.peek s.queue with
      | Some e when e.time <= until ->
          ignore (Heap.pop s.queue);
          fire s e
      | _ -> continue := false
    done
  end
  else while seq_step coord ~until do () done;
  advance_clocks coord until

let run t ~until =
  let coord = t.coord in
  if coord.parallel then invalid_arg "Sim.run: parallel driver active";
  match coord.prof with
  | None -> run_plain coord ~until
  | Some p when not (Float.is_finite until) ->
      (* Unbounded runs cannot be sliced into windows; account the
         whole drain as one slice. *)
      let t0 = p.hp_clock () in
      let d0 = sum_shards t (fun s -> s.dispatched) in
      run_plain coord ~until;
      p.hp_seq ~until ~dt:(p.hp_clock () -. t0)
        ~events:(sum_shards t (fun s -> s.dispatched) - d0)
  | Some p ->
      (* Profiled sequential driver: advance in lookahead-width slices
         (whole-range when the sim has no lookahead) so per-window wall
         time and GC deltas are visible without touching the host clock
         per event. Slicing changes nothing observable — events fire in
         the same total order and clocks only ever advance — so golden
         fixtures stay byte-identical under profiling. *)
      let stride =
        if coord.lookahead > 0.0 then coord.lookahead
        else Float.max (until -. coord.gclock) 1e-9
      in
      let continue = ref true in
      while !continue do
        let w_end = Float.min (coord.gclock +. stride) until in
        let t0 = p.hp_clock () in
        let d0 = sum_shards t (fun s -> s.dispatched) in
        run_plain coord ~until:w_end;
        p.hp_seq ~until:w_end ~dt:(p.hp_clock () -. t0)
          ~events:(sum_shards t (fun s -> s.dispatched) - d0);
        if w_end >= until then continue := false
      done

let step t =
  let coord = t.coord in
  if coord.parallel then invalid_arg "Sim.step: parallel driver active";
  if Array.length coord.shards = 1 then
    let s = coord.shards.(0) in
    match Heap.pop s.queue with
    | None -> false
    | Some e ->
        fire s e;
        true
  else seq_step coord ~until:infinity

let run_until_idle t ?(limit = 100_000_000) () =
  let count = ref 0 in
  while step t do
    incr count;
    if !count > limit then
      failwith "Sim.run_until_idle: event limit exceeded (runaway simulation?)"
  done

(* ------------------------------------------------------------------ *)
(* The parallel windowed driver                                        *)
(* ------------------------------------------------------------------ *)

let min_next_time coord =
  Array.fold_left
    (fun acc s ->
      match Heap.peek s.queue with
      | None -> acc
      | Some e -> (
          match acc with
          | None -> Some e.time
          | Some m -> Some (Float.min m e.time)))
    None coord.shards

(* Runs on the coordinator thread between windows: move every mailbox
   post into its destination heap in (p_time, p_src, p_seq) order. *)
let drain_inboxes coord =
  Array.iter
    (fun s ->
      Mutex.lock s.inbox_mu;
      let posts = s.inbox in
      s.inbox <- [];
      Mutex.unlock s.inbox_mu;
      let posts =
        List.sort
          (fun a b ->
            let c = compare a.p_time b.p_time in
            if c <> 0 then c
            else
              let c = compare a.p_src b.p_src in
              if c <> 0 then c else compare a.p_seq b.p_seq)
          posts
      in
      List.iter (fun p -> ignore (push_local s p.p_time p.p_fn)) posts)
    coord.shards

let run_shard_window s ~w_end =
  Domain.DLS.set current_shard (Some s);
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set current_shard None)
    (fun () ->
      let continue = ref true in
      while !continue do
        match Heap.peek s.queue with
        | Some e when e.time < w_end ->
            ignore (Heap.pop s.queue);
            fire s e
        | _ -> continue := false
      done)

let run_parallel t ~domains ~until ?on_window () =
  let coord = t.coord in
  if coord.parallel then
    invalid_arg "Sim.run_parallel: parallel driver already active";
  if domains < 1 then invalid_arg "Sim.run_parallel: domains must be >= 1";
  if (not (Float.is_finite coord.lookahead)) || coord.lookahead <= 0.0 then
    invalid_arg "Sim.run_parallel: requires a positive finite lookahead";
  if Trace.enabled coord.trace then
    invalid_arg "Sim.run_parallel: tracing is not supported in parallel";
  let n = Array.length coord.shards in
  let nd = min domains n in
  coord.parallel <- true;
  (* Parallel-mode seqs continue above every sequential seq so newly
     scheduled events never FIFO-jump ahead of pre-existing events at
     an equal timestamp. *)
  Array.iter (fun s -> s.local_seq <- coord.next_seq) coord.shards;
  let mu = Mutex.create () in
  let cv_start = Condition.create () in
  let cv_done = Condition.create () in
  let round = ref 0 in
  let finished = ref 0 in
  let stop = ref false in
  let w_end_r = ref 0.0 in
  let errors = ref [] in
  (* Worker [i] owns shards i, i+nd, i+2nd, ... for the whole run; the
     barrier mutex orders its heap mutations against the coordinator's
     inter-window drains. A worker that raises (e.g. a lookahead
     violation) records the exception and keeps honoring barriers so
     the coordinator can shut the fleet down cleanly. *)
  (* Freshly spawned domains start with the runtime's default minor
     heap, not the spawning domain's: a bench harness that enlarged the
     minor heap to curb stop-the-world rendezvous would silently lose
     that tuning exactly where it matters most (every worker's minor
     collection stops all domains). Re-apply the coordinator's GC
     parameters inside each worker. *)
  let gc_params = Gc.get () in
  let prof = coord.prof in
  let worker i () =
    Gc.set gc_params;
    let my_round = ref 0 in
    let running = ref true in
    while !running do
      (* Barrier-stall accounting starts when the worker goes back to
         the barrier (or, on the first round, right after spawn) and
         ends when it is released into a window; the final park before
         [stop] is shutdown, not stall, and is not recorded. *)
      let t_park = match prof with Some p -> p.hp_clock () | None -> 0.0 in
      Mutex.lock mu;
      while !round = !my_round && not !stop do
        Condition.wait cv_start mu
      done;
      if !stop then begin
        running := false;
        Mutex.unlock mu
      end
      else begin
        my_round := !round;
        let w_end = !w_end_r in
        Mutex.unlock mu;
        (match prof with
        | Some p -> p.hp_stall ~worker:i ~dt:(p.hp_clock () -. t_park)
        | None -> ());
        let err =
          try
            let k = ref i in
            while !k < n do
              let s = coord.shards.(!k) in
              (match prof with
              | Some p ->
                  let t0 = p.hp_clock () in
                  let d0 = s.dispatched in
                  run_shard_window s ~w_end;
                  p.hp_execute ~sid:s.sid
                    ~dt:(p.hp_clock () -. t0)
                    ~events:(s.dispatched - d0)
              | None -> run_shard_window s ~w_end);
              k := !k + nd
            done;
            None
          with e -> Some e
        in
        Mutex.lock mu;
        (match err with Some e -> errors := e :: !errors | None -> ());
        incr finished;
        if !finished = nd then Condition.signal cv_done;
        Mutex.unlock mu
      end
    done
  in
  let doms = Array.init nd (fun i -> Domain.spawn (worker i)) in
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock mu;
      stop := true;
      Condition.broadcast cv_start;
      Mutex.unlock mu;
      Array.iter Domain.join doms;
      coord.parallel <- false;
      Array.iter
        (fun s ->
          if s.local_seq > coord.next_seq then coord.next_seq <- s.local_seq)
        coord.shards)
    (fun () ->
      let continue = ref true in
      while !continue do
        (* Coordinator phase boundaries: [tA, tB) is window setup (the
           cross-heap minimum scan, release), [tB, tC) the span spent
           waiting for workers — the parallel execute region — and
           [tC, tD) the single-threaded mailbox merge + clock advance +
           on_window callback. Four clock reads per window. *)
        let tA = match prof with Some p -> p.hp_clock () | None -> 0.0 in
        match min_next_time coord with
        | Some t0 when t0 < until ->
            let w_end = Float.min (t0 +. coord.lookahead) until in
            coord.window_end <- w_end;
            Mutex.lock mu;
            w_end_r := w_end;
            incr round;
            finished := 0;
            Condition.broadcast cv_start;
            let tB = match prof with Some p -> p.hp_clock () | None -> 0.0 in
            while !finished < nd do
              Condition.wait cv_done mu
            done;
            Mutex.unlock mu;
            (match !errors with
            | e :: _ -> raise e
            | [] ->
                let tC =
                  match prof with Some p -> p.hp_clock () | None -> 0.0
                in
                drain_inboxes coord;
                advance_clocks coord w_end;
                (match on_window with Some f -> f w_end | None -> ());
                (match prof with
                | Some p ->
                    let tD = p.hp_clock () in
                    p.hp_coord ~dt:(tB -. tA);
                    p.hp_merge ~dt:(tD -. tC);
                    p.hp_window ~w_end ~span:(tC -. tB) ~wall:(tD -. tA)
                | None -> ()))
        | _ -> continue := false
      done);
  (* Events exactly at [until] (and the final clock advance) run through
     the sequential merge driver — windows are half-open on the right. *)
  run t ~until
