module Heap = Massbft_util.Heap
module Trace = Massbft_trace.Trace

(* The timer handle carries a back-reference to its simulator so
   [cancel] can maintain the live/garbage accounting without widening
   the public [cancel : timer -> unit] signature. *)
type timer = { mutable cancelled : bool; mutable fired : bool; owner : t }

and event = { time : float; seq : int; handle : timer; fn : unit -> unit }

and t = {
  mutable clock : float;
  mutable next_seq : int;
  queue : event Heap.t;
  mutable live : int;  (* scheduled, neither cancelled nor fired *)
  mutable garbage : int;  (* cancelled events still sitting in the heap *)
  mutable trace : Trace.t;
  mutable dispatched : int;
  mutable last_trace_at : float;
}

let compare_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create () =
  {
    clock = 0.0;
    next_seq = 0;
    queue = Heap.create ~cmp:compare_event;
    live = 0;
    garbage = 0;
    trace = Trace.null;
    dispatched = 0;
    last_trace_at = neg_infinity;
  }

let now t = t.clock
let set_trace t tr = t.trace <- tr
let dispatched t = t.dispatched

(* Sampling period for the dispatch-rate counter: often enough to see
   load swings in a trace viewer, rare enough not to crowd the ring
   buffer. Emitting a counter never schedules anything, so tracing
   cannot perturb the event order. *)
let trace_counter_period = 0.1

let at t time fn =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.at: scheduling in the past (%.9f < %.9f)" time
         t.clock);
  let handle = { cancelled = false; fired = false; owner = t } in
  Heap.push t.queue { time; seq = t.next_seq; handle; fn };
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  handle

let after t delay fn =
  if delay < 0.0 then invalid_arg "Sim.after: negative delay";
  at t (t.clock +. delay) fn

(* Below this size an occasional linear pop-through of garbage is
   cheaper than rebuilding; above it, compaction keeps pop cost and
   memory proportional to live events. *)
let compaction_min_size = 64

let cancel handle =
  if not handle.cancelled && not handle.fired then begin
    handle.cancelled <- true;
    let t = handle.owner in
    t.live <- t.live - 1;
    t.garbage <- t.garbage + 1;
    (* Lazy deletion with bounded slack: once cancelled entries are the
       majority of the heap, evict them all in one O(n) rebuild. Each
       rebuild is paid for by the >= n/2 cancellations since the last
       one, so cancel stays amortized O(1) (plus the O(log n) saved on
       every later pop). Pop order of survivors is untouched — the
       (time, seq) comparator is a total order — so a compacted run
       dispatches bit-identically to an uncompacted one. *)
    if t.garbage > t.live && Heap.length t.queue >= compaction_min_size then begin
      Heap.filter_in_place t.queue (fun e -> not e.handle.cancelled);
      t.garbage <- 0
    end
  end

let pending t = t.live
let heap_size t = Heap.length t.queue

let fire t e =
  t.clock <- e.time;
  if e.handle.cancelled then t.garbage <- t.garbage - 1
  else begin
    e.handle.fired <- true;
    t.live <- t.live - 1;
    t.dispatched <- t.dispatched + 1;
    if
      Trace.enabled t.trace
      && t.clock -. t.last_trace_at >= trace_counter_period
    then begin
      t.last_trace_at <- t.clock;
      Trace.counter t.trace ~ts:t.clock ~cat:"sim" "dispatched"
        (float_of_int t.dispatched);
      Trace.counter t.trace ~ts:t.clock ~cat:"sim" "pending"
        (float_of_int t.live)
    end;
    e.fn ()
  end

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some e ->
      fire t e;
      true

let run t ~until =
  let continue = ref true in
  while !continue do
    match Heap.peek t.queue with
    | Some e when e.time <= until ->
        ignore (Heap.pop t.queue);
        fire t e
    | _ -> continue := false
  done;
  if t.clock < until then t.clock <- until

let run_until_idle t ?(limit = 100_000_000) () =
  let count = ref 0 in
  while step t do
    incr count;
    if !count > limit then
      failwith "Sim.run_until_idle: event limit exceeded (runaway simulation?)"
  done
