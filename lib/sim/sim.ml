module Heap = Massbft_util.Heap
module Trace = Massbft_trace.Trace

type timer = { mutable cancelled : bool; mutable fired : bool }

type event = { time : float; seq : int; handle : timer; fn : unit -> unit }

type t = {
  mutable clock : float;
  mutable next_seq : int;
  queue : event Heap.t;
  mutable trace : Trace.t;
  mutable dispatched : int;
  mutable last_trace_at : float;
}

let compare_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create () =
  {
    clock = 0.0;
    next_seq = 0;
    queue = Heap.create ~cmp:compare_event;
    trace = Trace.null;
    dispatched = 0;
    last_trace_at = neg_infinity;
  }

let now t = t.clock
let set_trace t tr = t.trace <- tr
let dispatched t = t.dispatched

(* Sampling period for the dispatch-rate counter: often enough to see
   load swings in a trace viewer, rare enough not to crowd the ring
   buffer. Emitting a counter never schedules anything, so tracing
   cannot perturb the event order. *)
let trace_counter_period = 0.1

let at t time fn =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.at: scheduling in the past (%.9f < %.9f)" time
         t.clock);
  let handle = { cancelled = false; fired = false } in
  Heap.push t.queue { time; seq = t.next_seq; handle; fn };
  t.next_seq <- t.next_seq + 1;
  handle

let after t delay fn =
  if delay < 0.0 then invalid_arg "Sim.after: negative delay";
  at t (t.clock +. delay) fn

let cancel handle = handle.cancelled <- true

let pending t =
  List.length
    (List.filter
       (fun e -> not e.handle.cancelled)
       (Heap.to_sorted_list t.queue))

let fire t e =
  t.clock <- e.time;
  if not e.handle.cancelled then begin
    e.handle.fired <- true;
    t.dispatched <- t.dispatched + 1;
    if
      Trace.enabled t.trace
      && t.clock -. t.last_trace_at >= trace_counter_period
    then begin
      t.last_trace_at <- t.clock;
      Trace.counter t.trace ~ts:t.clock ~cat:"sim" "dispatched"
        (float_of_int t.dispatched);
      Trace.counter t.trace ~ts:t.clock ~cat:"sim" "pending"
        (float_of_int (Heap.length t.queue))
    end;
    e.fn ()
  end

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some e ->
      fire t e;
      true

let run t ~until =
  let continue = ref true in
  while !continue do
    match Heap.peek t.queue with
    | Some e when e.time <= until ->
        ignore (Heap.pop t.queue);
        fire t e
    | _ -> continue := false
  done;
  if t.clock < until then t.clock <- until

let run_until_idle t ?(limit = 100_000_000) () =
  let count = ref 0 in
  while step t do
    incr count;
    if !count > limit then
      failwith "Sim.run_until_idle: event limit exceeded (runaway simulation?)"
  done
