module Trace = Massbft_trace.Trace

type cls = Bulk | Ctrl

type t = {
  sim : Sim.t;
  mutable bandwidth_bps : float;
  mutable busy_until : float;  (* bulk-class queue *)
  mutable ctrl_busy_until : float;  (* control-class queue *)
  mutable bulk_bytes_sent : int;
  mutable ctrl_bytes_sent : int;
  mutable bulk_busy_s : float;  (* cumulative serialization time accepted *)
  mutable ctrl_busy_s : float;
  mutable trace : Trace.t;
  mutable tr_gid : int;
  mutable tr_node : int;
  mutable tr_link : string;
}

let create sim ~bandwidth_bps =
  if bandwidth_bps <= 0.0 then
    invalid_arg "Nic.create: bandwidth must be positive";
  {
    sim;
    bandwidth_bps;
    busy_until = 0.0;
    ctrl_busy_until = 0.0;
    bulk_bytes_sent = 0;
    ctrl_bytes_sent = 0;
    bulk_busy_s = 0.0;
    ctrl_busy_s = 0.0;
    trace = Trace.null;
    tr_gid = -1;
    tr_node = -1;
    tr_link = "";
  }

let bandwidth t = t.bandwidth_bps

let set_bandwidth t bps =
  if bps <= 0.0 then invalid_arg "Nic.set_bandwidth: bandwidth must be positive";
  t.bandwidth_bps <- bps

let set_trace t tr ~gid ~node ~link =
  t.trace <- tr;
  t.tr_gid <- gid;
  t.tr_node <- node;
  t.tr_link <- link

let transmit ?(bulk = false) t ~bytes k =
  if bytes < 0 then invalid_arg "Nic.transmit: negative size";
  let queue_head = if bulk then t.busy_until else t.ctrl_busy_until in
  let now = Sim.now t.sim in
  let start = Float.max now queue_head in
  let duration = float_of_int bytes *. 8.0 /. t.bandwidth_bps in
  let finish = start +. duration in
  if bulk then begin
    t.busy_until <- finish;
    t.bulk_bytes_sent <- t.bulk_bytes_sent + bytes;
    t.bulk_busy_s <- t.bulk_busy_s +. duration
  end
  else begin
    t.ctrl_busy_until <- finish;
    t.ctrl_bytes_sent <- t.ctrl_bytes_sent + bytes;
    t.ctrl_busy_s <- t.ctrl_busy_s +. duration
  end;
  if Trace.enabled t.trace then begin
    let link = if bulk then t.tr_link ^ ".bulk" else t.tr_link in
    if start > now then
      Trace.span t.trace ~cat:"nic" ~gid:t.tr_gid ~node:t.tr_node
        ~args:[ ("link", Trace.Str link); ("bytes", Trace.Int bytes) ]
        ~b:now ~e:start "queue";
    Trace.span t.trace ~cat:"nic" ~gid:t.tr_gid ~node:t.tr_node
      ~args:[ ("link", Trace.Str link); ("bytes", Trace.Int bytes) ]
      ~b:start ~e:finish "xmit"
  end;
  ignore (Sim.at t.sim finish k)

let busy_until t = t.busy_until
let ctrl_busy_until t = t.ctrl_busy_until
let bytes_sent t = t.bulk_bytes_sent + t.ctrl_bytes_sent
let class_bytes_sent t = function
  | Bulk -> t.bulk_bytes_sent
  | Ctrl -> t.ctrl_bytes_sent

let class_busy_seconds t = function
  | Bulk -> t.bulk_busy_s
  | Ctrl -> t.ctrl_busy_s

let backlog_s t =
  let now = Sim.now t.sim in
  Float.max 0.0
    (Float.max (t.busy_until -. now) (t.ctrl_busy_until -. now))

let class_backlog_s t cls =
  let head = match cls with Bulk -> t.busy_until | Ctrl -> t.ctrl_busy_until in
  Float.max 0.0 (head -. Sim.now t.sim)
