(** A network-interface serializer: a FIFO queue draining at a fixed bit
    rate. Each simulated node owns four of these (WAN up/down, LAN
    up/down); the WAN uplink at 20 Mbps is precisely the resource whose
    exhaustion produces the paper's leader bottleneck (Figures 1b and
    13a). *)

type t

type cls = Bulk | Ctrl
(** The two service classes (separate TCP streams in a real
    deployment): [Bulk] carries entry chunks and copies, [Ctrl] carries
    votes, acks and consensus metadata. *)

val create : Sim.t -> bandwidth_bps:float -> t
(** [create sim ~bandwidth_bps] is an idle NIC. Bandwidth must be
    positive. *)

val bandwidth : t -> float

val set_bandwidth : t -> float -> unit
(** Takes effect for subsequently enqueued transmissions (Figure 14's
    mid-experiment bandwidth mix is configured before the run). *)

val transmit : ?bulk:bool -> t -> bytes:int -> (unit -> unit) -> unit
(** [transmit t ~bytes k] enqueues a [bytes]-sized frame; [k] runs when
    the last bit has left the interface. Frames drain in FIFO order at
    the configured rate within their class.

    [bulk] (default [false]) selects the service class. Control frames
    (votes, acks, consensus metadata) and bulk frames (entry chunks and
    copies) model separate TCP streams: a small control frame is never
    stuck behind a deep bulk queue, which is how real deployments behave
    and what keeps consensus live when a slow group's link saturates.
    Bulk capacity is unaffected in practice because control traffic is a
    negligible byte fraction. *)

val set_trace : t -> Massbft_trace.Trace.t -> gid:int -> node:int -> link:string -> unit
(** Attaches a trace sink and this NIC's identity. Every subsequent
    {!transmit} then emits ["nic"]-category spans: a [queue] span when
    the frame waits behind the class queue, and an [xmit] span for its
    serialization; both carry the link label (suffixed [".bulk"] for
    the bulk class) and frame size. Defaults to the disabled sink. *)

val busy_until : t -> float
(** The virtual time at which the bulk-class queue drains; [now] or
    earlier when idle. *)

val ctrl_busy_until : t -> float
(** Same for the control-class queue. *)

val bytes_sent : t -> int
(** Cumulative bytes accepted by this NIC across both service classes,
    for traffic accounting (Figure 10). *)

val class_bytes_sent : t -> cls -> int
(** Per-class slice of {!bytes_sent}. *)

val class_busy_seconds : t -> cls -> float
(** Cumulative serialization time accepted by a class's queue. Work is
    accounted at enqueue time (like {!Cpu.busy_seconds}), so a delta of
    this value over a sampling window is the window's *offered* load —
    the observability sampler divides it by the window length and caps
    at 1.0 to get a busy fraction. *)

val backlog_s : t -> float
(** Seconds until this NIC is fully drained — the *maximum* over both
    class queues (each class serializes independently at the full
    rate); 0 when idle. *)

val class_backlog_s : t -> cls -> float
(** Seconds of queued transmission in one class. *)
