(* Applies a fault schedule to a running deployment at scheduled sim
   times. Node/group crashes go through the engine (which owns the
   leader-migration machinery); link faults interpose on the topology's
   send path through its single fault hook; degradations reconfigure
   NIC bandwidths and CPU speed factors, healing back to nominal when
   their window closes.

   Sharded-scheduler discipline: every apply/heal event is scheduled on
   the shard owning the fault's target group, so the parallel driver
   mutates engine/NIC/CPU state only from the owning domain. Link
   faults keep no activation state at all — the hook receives the
   sender's virtual time and decides from the precomputed windows
   ([at <= now < at + for_s]), which is what keeps it deterministic
   when hooks run concurrently on several sending shards. The
   [every]-gated counters remain single-writer because a link fault
   names one source group, hence one sending shard.

   Everything is armed up front ([arm]) as plain simulator events, so a
   run with an injector replays bit-identically from the same seed and
   schedule. With an empty schedule, [arm] schedules nothing and
   installs no hook — the run is indistinguishable from a fault-free
   one. *)

module Sim = Massbft_sim.Sim
module Topology = Massbft_sim.Topology
module Cpu = Massbft_sim.Cpu
module Engine = Massbft.Engine
module Trace = Massbft_trace.Trace
module Registry = Massbft_obs.Registry
module F = Fault_spec

(* A link fault with its resolved activity window; [count] numbers the
   matching messages so [every]-gated faults hit a deterministic
   subsequence. Single-writer: only the fault's [src_g] shard ever
   sends matching messages. *)
type lfault = {
  lf : F.fault;
  from_s : float;
  until_s : float;
  count : int ref;
}

type t = {
  sim : Sim.t;
  topo : Topology.t;
  engine : Engine.t;
  spec : Topology.spec;
  schedule : F.schedule;
  trace : Trace.t;
  registry : Registry.t option;
  kind_counters : (string, Registry.counter) Hashtbl.t;
  mutable link_faults : lfault array;
  mutable injected : int;
  mutable armed : bool;
}

let create ?(trace = Trace.null) ?registry ~spec ~schedule engine sim topo =
  (match F.validate ~group_sizes:spec.Topology.group_sizes schedule with
  | Ok () -> ()
  | Error e -> invalid_arg ("Injector.create: " ^ e));
  {
    sim;
    topo;
    engine;
    spec;
    schedule = F.sorted schedule;
    trace;
    registry;
    kind_counters = Hashtbl.create 11;
    link_faults = [||];
    injected = 0;
    armed = false;
  }

let schedule t = t.schedule
let injected_total t = t.injected

(* Runs only in shard-0 events (see [arm]), so the plain mutable count
   and the registry stay single-writer under the parallel driver. *)
let count_injection t fault =
  t.injected <- t.injected + 1;
  match t.registry with
  | None -> ()
  | Some reg ->
      let kind = F.kind_name fault in
      let c =
        match Hashtbl.find_opt t.kind_counters kind with
        | Some c -> c
        | None ->
            (* Register each kind's series once; the same (name, labels)
               pair may only be registered once per registry. The
               strategy label distinguishes benign fault injections
               from adversary interference, which shares the family
               with strategy=<adversary kind>. *)
            let c =
              Registry.counter reg ~name:"massbft_faults_injected_total"
                ~help:"Fault events applied by the chaos injector"
                [ ("kind", kind); ("strategy", "fault") ]
            in
            Hashtbl.replace t.kind_counters kind c;
            c
      in
      Registry.inc c

(* ------------------------------------------------------------------ *)
(* The link-fault hook                                                 *)
(* ------------------------------------------------------------------ *)

let class_match cls ~bulk =
  match cls with F.Any -> true | F.Bulk -> bulk | F.Control -> not bulk

let dup_spacing_s = 0.001

(* First applicable window-active fault wins; [every]-gated faults
   count every matching message but only act on the [every]-th. The
   boundary convention [from_s <= now < until_s] reproduces the legacy
   stateful hook: an apply event armed up front fired before any
   same-time message, and the heal event (seq-allocated at apply time)
   fired before any message stamped exactly at the window's end. *)
let decide a ~now ~(src : Topology.addr) ~(dst : Topology.addr) ~bulk =
  if now < a.from_s || now >= a.until_s then None
  else
    match a.lf with
    | F.Partition { groups; _ } ->
        let inside g = List.mem g groups in
        if inside src.Topology.g <> inside dst.Topology.g then
          Some Topology.Net_drop
        else None
    | F.Link_drop { src_g; dst_g; every; cls; _ } ->
        if
          src.Topology.g = src_g
          && dst.Topology.g = dst_g
          && class_match cls ~bulk
        then begin
          incr a.count;
          if !(a.count) mod every = 0 then Some Topology.Net_drop else None
        end
        else None
    | F.Link_delay { src_g; dst_g; add_s; cls; _ } ->
        if
          src.Topology.g = src_g
          && dst.Topology.g = dst_g
          && class_match cls ~bulk
        then Some (Topology.Net_delay add_s)
        else None
    | F.Link_dup { src_g; dst_g; copies; every; cls; _ } ->
        if
          src.Topology.g = src_g
          && dst.Topology.g = dst_g
          && class_match cls ~bulk
        then begin
          incr a.count;
          if !(a.count) mod every = 0 then
            Some (Topology.Net_dup { copies; spacing_s = dup_spacing_s })
          else None
        end
        else None
    | _ -> None

let hook t : Topology.fault_hook =
 fun ~src ~dst ~bulk ~bytes:_ ~now ->
  let n = Array.length t.link_faults in
  let rec scan i =
    if i >= n then None
    else
      match decide t.link_faults.(i) ~now ~src ~dst ~bulk with
      | Some _ as f -> f
      | None -> scan (i + 1)
  in
  scan 0

let is_link_fault = function
  | F.Partition _ | F.Link_drop _ | F.Link_delay _ | F.Link_dup _ -> true
  | _ -> false

(* The group whose shard owns the fault's apply/heal mutations; [None]
   for link faults, which are window checks in the hook and need no
   application event. *)
let target_group = function
  | F.Crash_node a | F.Recover_node a -> Some a.Topology.g
  | F.Crash_group g | F.Recover_group g -> Some g
  | F.Wan_degrade { g; _ } | F.Lan_degrade { g; _ } -> Some g
  | F.Slow_cpu { addr; _ } -> Some addr.Topology.g
  | F.Partition _ | F.Link_drop _ | F.Link_delay _ | F.Link_dup _ -> None

(* ------------------------------------------------------------------ *)
(* Apply / heal                                                        *)
(* ------------------------------------------------------------------ *)

let group_nodes t g = Topology.group_nodes t.topo g

let apply t fault =
  match fault with
  | F.Crash_node a -> Engine.crash_node t.engine a
  | F.Recover_node a -> Engine.recover_node t.engine a
  | F.Crash_group g -> Engine.crash_group t.engine g
  | F.Recover_group g -> Engine.recover_group t.engine g
  | F.Partition _ | F.Link_drop _ | F.Link_delay _ | F.Link_dup _ -> ()
  | F.Wan_degrade { g; factor; _ } ->
      List.iter
        (fun a ->
          Topology.set_wan_bandwidth t.topo a
            (t.spec.Topology.wan_bps *. factor))
        (group_nodes t g)
  | F.Lan_degrade { g; factor; _ } ->
      List.iter
        (fun a ->
          Topology.set_lan_bandwidth t.topo a
            (t.spec.Topology.lan_bps *. factor))
        (group_nodes t g)
  | F.Slow_cpu { addr; factor; _ } ->
      Cpu.set_speed_factor (Topology.cpu t.topo addr) factor

(* Windows heal back to nominal (overlapping degradations of the same
   resource therefore heal together — the generator never overlaps
   them). *)
let heal t fault =
  match fault with
  | F.Crash_node _ | F.Recover_node _ | F.Crash_group _ | F.Recover_group _
  | F.Partition _ | F.Link_drop _ | F.Link_delay _ | F.Link_dup _ ->
      ()
  | F.Wan_degrade { g; _ } ->
      List.iter
        (fun a ->
          Topology.set_wan_bandwidth t.topo a t.spec.Topology.wan_bps)
        (group_nodes t g)
  | F.Lan_degrade { g; _ } ->
      List.iter
        (fun a ->
          Topology.set_lan_bandwidth t.topo a t.spec.Topology.lan_bps)
        (group_nodes t g)
  | F.Slow_cpu { addr; _ } ->
      Cpu.set_speed_factor (Topology.cpu t.topo addr) 1.0

let window_of = function
  | F.Partition { for_s; _ }
  | F.Link_drop { for_s; _ }
  | F.Link_delay { for_s; _ }
  | F.Link_dup { for_s; _ }
  | F.Wan_degrade { for_s; _ }
  | F.Lan_degrade { for_s; _ }
  | F.Slow_cpu { for_s; _ } ->
      Some for_s
  | F.Crash_node _ | F.Recover_node _ | F.Crash_group _ | F.Recover_group _
    ->
      None

let arm t =
  if t.armed then invalid_arg "Injector.arm: already armed";
  t.armed <- true;
  let tnow = Sim.now t.sim in
  t.link_faults <-
    Array.of_list
      (List.filter_map
         (fun { F.at; fault } ->
           if is_link_fault fault then begin
             let from_s = Float.max at tnow in
             let for_s = Option.value ~default:0.0 (window_of fault) in
             Some { lf = fault; from_s; until_s = from_s +. for_s; count = ref 0 }
           end
           else None)
         t.schedule);
  if Array.length t.link_faults > 0 then
    Topology.set_fault_hook t.topo (Some (hook t));
  List.iter
    (fun { F.at; fault } ->
      let at = Float.max at tnow in
      (* Counting + tracing stay on the creation shard (shard 0 for the
         runner's deployments): one writer for the injected total, the
         registry and the trace sink. *)
      ignore
        (Sim.at t.sim at (fun () ->
             count_injection t fault;
             match window_of fault with
             | None ->
                 Trace.instant t.trace ~cat:"fault"
                   (F.kind_name fault)
                   ~args:[ ("spec", Trace.Str (F.fault_to_string fault)) ]
             | Some for_s ->
                 let span =
                   Trace.span_begin t.trace ~cat:"fault"
                     (F.kind_name fault)
                     ~args:
                       [ ("spec", Trace.Str (F.fault_to_string fault)) ]
                 in
                 ignore
                   (Sim.after t.sim for_s (fun () ->
                        Trace.span_end t.trace span))));
      (* Application + heal on the target group's shard. *)
      match target_group fault with
      | None -> ()
      | Some g ->
          let gsim = Topology.shard_of t.topo g in
          ignore
            (Sim.at gsim at (fun () ->
                 apply t fault;
                 match window_of fault with
                 | None -> ()
                 | Some for_s ->
                     ignore (Sim.after gsim for_s (fun () -> heal t fault)))))
    t.schedule
