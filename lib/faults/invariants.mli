(** Safety invariant checkers over a running engine.

    A checker polls read-only engine accessors — attaching one never
    changes what a run commits — and records violations of:

    - {b cross_chain}: no two groups build different block hashes at
      the same global ledger height;
    - {b replica_prefix}: no two PBFT replicas of a group decide
      different digests at the same local sequence number, and decided
      digests match the proposer's entry;
    - {b raft_monotone}: each leader's view of each global Raft
      instance's commit index never goes backwards;
    - {b liveness}: once every injected fault has healed, executed
      entries keep advancing within a bound (a watchdog — reported at
      most once per run);

    plus, at {!finalize}: per-group ledger hash-chain integrity and
    execution determinism (equal-height ledgers must yield equal
    database fingerprints). *)

type violation = { at : float; check : string; detail : string }

exception Violation of violation
(** Raised by checks when [fail_fast] was set. *)

val violation_to_string : violation -> string

type t

val create :
  ?liveness_bound_s:float ->
  ?heal_by:float ->
  ?fail_fast:bool ->
  Massbft.Engine.t ->
  Massbft_sim.Sim.t ->
  t
(** [liveness_bound_s] (default 3.0) is the maximum tolerated progress
    gap after [heal_by] (default 0.0 — pass
    [Fault_spec.heal_time schedule]; an infinite [heal_by], e.g. from a
    never-recovered crash, disables the liveness watchdog entirely).
    With [fail_fast] (default false) the first violation raises
    {!Violation} out of the simulation instead of only recording. *)

val attach : ?period:float -> t -> unit
(** Polls {!check_now} every [period] (default 0.25) simulated seconds
    for the rest of the run. *)

val check_now : t -> unit
(** One polling pass, incremental over the growth since the last. *)

val finalize : t -> unit
(** End-of-run pass: a last {!check_now}, ledger verification, and the
    execution-determinism comparison. Call after the simulation. *)

val violations : t -> violation list
(** Oldest first. *)

val ok : t -> bool

val checks_run : t -> int
(** Polling passes completed (diagnostics). *)
