(** Safety invariant checkers over a running engine.

    A checker polls read-only engine accessors — attaching one never
    changes what a run commits — and records violations of:

    - {b cross_chain}: no two groups build different block hashes at
      the same global ledger height;
    - {b replica_prefix}: no two PBFT replicas of a group decide
      different digests at the same local sequence number, and decided
      digests match the proposer's entry;
    - {b raft_monotone}: each leader's view of each global Raft
      instance's commit index never goes backwards;
    - {b liveness}: once every injected fault has healed, executed
      entries keep advancing within a bound (a watchdog — reported at
      most once per run);

    plus, at {!finalize}: per-group ledger hash-chain integrity and
    execution determinism (equal-height ledgers must yield equal
    database fingerprints).

    Under an adversary ({!Massbft_adversary.Adversary}), pass the run's
    [compromised] predicate and [evidence] log: safety comparisons then
    cover honest replicas only (a Byzantine node may decide anything
    without breaking BFT's promise), and each safety violation carries
    the conflicting signed message pair proving which node caused it —
    machine-checkable accountability, in the style of BFT forensics. *)

type violation = {
  at : float;
  check : string;
  detail : string;
  evidence : Massbft_adversary.Evidence.pair option;
      (** the conflicting signed pair behind this violation, when the
          adversary's evidence log holds one (safety checks only —
          liveness violations have no equivocation to show) *)
}

exception Violation of violation
(** Raised by checks when [fail_fast] was set. *)

val violation_to_string : violation -> string

type t

val create :
  ?liveness_bound_s:float ->
  ?heal_by:float ->
  ?fail_fast:bool ->
  ?compromised:(Massbft_sim.Topology.addr -> bool) ->
  ?evidence:Massbft_adversary.Evidence.log ->
  Massbft.Engine.t ->
  Massbft_sim.Sim.t ->
  t
(** [liveness_bound_s] (default 3.0) is the maximum tolerated progress
    gap after [heal_by] (default 0.0 — pass
    [Fault_spec.heal_time schedule]; an infinite [heal_by], e.g. from a
    never-recovered crash, disables the liveness watchdog entirely).
    With [fail_fast] (default false) the first violation raises
    {!Violation} out of the simulation instead of only recording.

    [compromised] (default: nobody) marks Byzantine replicas: the
    replica-agreement check then compares honest replicas only, and the
    proposer-registry cross-check is skipped for groups containing a
    compromised node (the registry itself may be forged there).
    [evidence] is the adversary's accountability log; when given,
    safety violations carry its conflicting signed pair for the
    affected slot. *)

val attach : ?period:float -> t -> unit
(** Polls {!check_now} every [period] (default 0.25) simulated seconds
    for the rest of the run. *)

val check_now : t -> unit
(** One polling pass, incremental over the growth since the last. *)

val finalize : t -> unit
(** End-of-run pass: a last {!check_now}, ledger verification, and the
    execution-determinism comparison. Call after the simulation. *)

val violations : t -> violation list
(** Oldest first. *)

val ok : t -> bool

val checks_run : t -> int
(** Polling passes completed (diagnostics). *)
