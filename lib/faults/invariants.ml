(* Safety invariant checkers: poll a running engine and record (or
   raise on) violations. Every check is a read-only view over engine
   state — attaching checkers never changes what a run commits — and
   every check is incremental, re-reading only growth since its last
   poll, so the polling cost stays flat as the run lengthens.

   Checks:
   - cross_chain: no two groups build different block hashes at the
     same global height (agreement on the merged ledger);
   - replica_prefix: within a group, no two PBFT replicas decide
     different digests at the same local sequence, and decided digests
     match the proposer's entry registry;
   - raft_monotone: every leader's view of every Raft instance's
     commit index only advances;
   - liveness: once every injected fault has healed ([heal_by]),
     executed entries must keep advancing within [liveness_bound_s]
     (a watchdog, not a safety property — reported once). *)

module Sim = Massbft_sim.Sim
module Engine = Massbft.Engine
module Types = Massbft.Types
module Topology = Massbft_sim.Topology
module Ledger = Massbft_exec.Ledger
module Evidence = Massbft_adversary.Evidence

type violation = {
  at : float;
  check : string;
  detail : string;
  evidence : Evidence.pair option;
      (* accountability: the conflicting signed messages proving which
         node caused this, when an adversary evidence log has one *)
}

exception Violation of violation

let violation_to_string v =
  Printf.sprintf "[%.3fs] %s: %s%s" v.at v.check v.detail
    (match v.evidence with
    | None -> ""
    | Some p ->
        Printf.sprintf " [evidence: %s equivocated on %s g%d seq %d]"
          p.Evidence.first.Evidence.e_signer p.Evidence.first.Evidence.e_kind
          p.Evidence.first.Evidence.e_gid p.Evidence.first.Evidence.e_seq)

type t = {
  engine : Engine.t;
  sim : Sim.t;
  fail_fast : bool;
  liveness_bound_s : float;
  heal_by : float;
  compromised : Topology.addr -> bool;
      (* under an adversary, safety is only promised among honest
         replicas — Byzantine nodes may decide anything *)
  evidence : Evidence.log option;
  mutable violations : violation list; (* newest first *)
  (* cross_chain: the reference hash chain (first group to reach a
     height defines it) and each group's checked-prefix cursor *)
  mutable ref_hashes : string array;
  mutable ref_len : int;
  cursors : int array;
  (* replica_prefix: per group, the longest prefix of local sequences
     every replica has decided (final in PBFT — never rescanned) *)
  agreed : int array;
  (* raft_monotone: last seen commit index per [gid][inst] *)
  last_commit : int array array;
  (* liveness *)
  mutable last_exec : int;
  mutable last_change : float;
  mutable live_flagged : bool;
  mutable checks_run : int;
}

let create ?(liveness_bound_s = 3.0) ?(heal_by = 0.0) ?(fail_fast = false)
    ?(compromised = fun _ -> false) ?evidence engine sim =
  let ng = Engine.n_groups engine in
  {
    engine;
    sim;
    fail_fast;
    liveness_bound_s;
    heal_by;
    compromised;
    evidence;
    violations = [];
    ref_hashes = [||];
    ref_len = 0;
    cursors = Array.make ng 0;
    agreed = Array.make ng 0;
    last_commit =
      Array.make_matrix ng (max 1 (Engine.raft_instances engine)) 0;
    last_exec = 0;
    last_change = 0.0;
    live_flagged = false;
    checks_run = 0;
  }

let record ?evidence t check detail =
  let v = { at = Sim.now t.sim; check; detail; evidence } in
  t.violations <- v :: t.violations;
  if t.fail_fast then raise (Violation v)

(* The conflicting signed pair for a consensus slot, if the adversary's
   evidence log caught one — slot-exact when possible, else any
   conflict (an equivocation elsewhere can still poison derived state
   such as the merged chain). *)
let slot_evidence t ~gid ~seq =
  match t.evidence with
  | None -> None
  | Some log -> (
      match Evidence.conflict_for log ~gid ~seq with
      | Some _ as p -> p
      | None -> Evidence.first_conflict log)

let any_evidence t =
  match t.evidence with
  | None -> None
  | Some log -> Evidence.first_conflict log

let ensure_cap t n =
  if n > Array.length t.ref_hashes then begin
    let grown = Array.make (max 64 (2 * n)) "" in
    Array.blit t.ref_hashes 0 grown 0 t.ref_len;
    t.ref_hashes <- grown
  end

let check_cross_chain t =
  let ng = Engine.n_groups t.engine in
  for g = 0 to ng - 1 do
    let led = Engine.ledger_of t.engine ~gid:g in
    let fresh = Ledger.blocks_from led ~height:t.cursors.(g) in
    List.iteri
      (fun i (b : Ledger.block) ->
        let h = t.cursors.(g) + i in
        if h < t.ref_len then begin
          if not (String.equal b.Ledger.block_hash t.ref_hashes.(h)) then
            record
              ?evidence:(slot_evidence t ~gid:b.Ledger.gid ~seq:b.Ledger.seq)
              t "cross_chain"
              (Printf.sprintf
                 "group %d's block at height %d (g%d seq %d) differs from \
                  the chain first built at that height"
                 g h b.Ledger.gid b.Ledger.seq)
        end
        else begin
          ensure_cap t (h + 1);
          t.ref_hashes.(h) <- b.Ledger.block_hash;
          t.ref_len <- h + 1
        end)
      fresh;
    t.cursors.(g) <- Ledger.height led
  done

let check_replica_prefix t =
  let ng = Engine.n_groups t.engine in
  for g = 0 to ng - 1 do
    let n = Engine.group_size t.engine g in
    (* BFT safety is only promised among honest replicas: a Byzantine
       node may decide anything, and when the proposer itself may be
       compromised its entry registry is not an oracle either. *)
    let honest = Array.init n (fun i -> not (t.compromised { Topology.g; n = i })) in
    let n_honest = Array.fold_left (fun a h -> if h then a + 1 else a) 0 honest in
    let group_clean = n_honest = n in
    let top = Engine.proposed_seqs t.engine ~gid:g in
    let seq = ref (t.agreed.(g) + 1) in
    let advancing = ref true in
    while !seq <= top do
      let s = !seq in
      let expect = Engine.entry_digest t.engine { Types.gid = g; seq = s } in
      let decided = ref 0 in
      let first = ref None in
      for node = 0 to n - 1 do
        if honest.(node) then
          match Engine.replica_decided t.engine ~g ~n:node ~seq:s with
          | None -> ()
          | Some d -> (
              incr decided;
              (match expect with
              | Some ed when group_clean && not (String.equal d ed) ->
                  record ?evidence:(slot_evidence t ~gid:g ~seq:s) t
                    "replica_prefix"
                    (Printf.sprintf
                       "g%d/n%d decided seq %d with a digest differing from \
                        the proposer's entry"
                       g node s)
              | _ -> ());
              match !first with
              | None -> first := Some d
              | Some d0 ->
                  if not (String.equal d d0) then
                    record ?evidence:(slot_evidence t ~gid:g ~seq:s) t
                      "replica_prefix"
                      (Printf.sprintf
                         "two honest replicas of group %d decided different \
                          digests at seq %d"
                         g s))
      done;
      (* A sequence decided by every honest replica is final (PBFT
         decides each slot at most once): fold it into the checked
         prefix. *)
      if !advancing && !decided = n_honest && s = t.agreed.(g) + 1 then
        t.agreed.(g) <- s
      else advancing := false;
      incr seq
    done
  done

let check_raft_monotone t =
  let ng = Engine.n_groups t.engine in
  let insts = Engine.raft_instances t.engine in
  for g = 0 to ng - 1 do
    for inst = 0 to insts - 1 do
      let ci = Engine.raft_commit_index t.engine ~gid:g ~inst in
      if ci < t.last_commit.(g).(inst) then
        record t "raft_monotone"
          (Printf.sprintf
             "group %d's view of instance %d's commit index went backwards \
              (%d -> %d)"
             g inst
             t.last_commit.(g).(inst)
             ci);
      t.last_commit.(g).(inst) <- ci
    done
  done

let check_liveness t =
  let total = Engine.entries_executed_total t.engine in
  let now = Sim.now t.sim in
  if total <> t.last_exec then begin
    t.last_exec <- total;
    t.last_change <- now
  end
  else if
    (not t.live_flagged)
    && Float.is_finite t.heal_by
    && now >= t.heal_by
    && now -. Float.max t.last_change t.heal_by > t.liveness_bound_s
  then begin
    t.live_flagged <- true;
    record t "liveness"
      (Printf.sprintf
         "no entry executed for %.1fs after all faults healed (at %.1fs)"
         (now -. Float.max t.last_change t.heal_by)
         t.heal_by)
  end

let check_now t =
  t.checks_run <- t.checks_run + 1;
  check_cross_chain t;
  check_replica_prefix t;
  check_raft_monotone t;
  check_liveness t

let attach ?(period = 0.25) t =
  if period <= 0.0 then invalid_arg "Invariants.attach: period must be > 0";
  let rec tick () =
    ignore
      (Sim.after t.sim period (fun () ->
           check_now t;
           tick ()))
  in
  tick ()

(* End-of-run checks over final state: hash-chain integrity of every
   group's ledger, plus execution determinism — equal-height ledgers
   (which cross_chain has shown hash-equal) must have produced equal
   database states. *)
let finalize t =
  check_now t;
  let ng = Engine.n_groups t.engine in
  for g = 0 to ng - 1 do
    if not (Ledger.verify (Engine.ledger_of t.engine ~gid:g)) then
      record ?evidence:(any_evidence t) t "ledger_integrity"
        (Printf.sprintf "group %d's ledger fails hash-chain verification" g)
  done;
  let heights =
    List.init ng (fun g -> Ledger.height (Engine.ledger_of t.engine ~gid:g))
  in
  match heights with
  | h0 :: rest when h0 > 0 && List.for_all (fun h -> h = h0) rest ->
      let fp0 = Engine.leader_store_fingerprint t.engine ~gid:0 in
      for g = 1 to ng - 1 do
        if
          not
            (String.equal fp0
               (Engine.leader_store_fingerprint t.engine ~gid:g))
        then
          record ?evidence:(any_evidence t) t "exec_determinism"
            (Printf.sprintf
               "groups 0 and %d executed the same %d-block chain to \
                different database states"
               g h0)
      done
  | _ -> ()

let violations t = List.rev t.violations
let ok t = t.violations = []
let checks_run t = t.checks_run
