(* The seeded chaos fuzzer: generate a random-but-valid fault schedule
   from an explicit Rng, run it against a deployment with the invariant
   checkers attached, and — when a schedule kills an invariant — shrink
   it by delta-debugging bisection to a minimal reproducer.

   The generator is system-aware. Group crashes, WAN message drops and
   partitions are only drawn for systems whose global phase can repair
   arbitrary loss (per-group Raft: anti-entropy re-ships, takeover +
   transfer-back per §V-C). GeoBFT has no global retransmission by
   design (Table I: it cannot survive a group crash), and Steward's
   single log stalls with its proposer, so for those systems the
   generator sticks to recoverable faults: delays, duplication,
   degradations, gray CPUs, and follower crashes. It also never crashes
   more than f nodes of any group, and never leaves a fault unhealed —
   so every generated schedule is one the system under test claims to
   tolerate, and any invariant violation is a real bug. *)

module Sim = Massbft_sim.Sim
module Topology = Massbft_sim.Topology
module Engine = Massbft.Engine
module Config = Massbft.Config
module Trace = Massbft_trace.Trace
module Registry = Massbft_obs.Registry
module Rng = Massbft_util.Rng
module Intmath = Massbft_util.Intmath
module F = Fault_spec
module A = Massbft_adversary.Adv_spec
module Adversary = Massbft_adversary.Adversary
module Evidence = Massbft_adversary.Evidence
module R = Massbft_reconfig.Reconfig_spec
module Reconfig = Massbft_reconfig.Reconfig

(* ------------------------------------------------------------------ *)
(* Schedule generation                                                 *)
(* ------------------------------------------------------------------ *)

(* Millisecond quantization keeps the text form round-trippable. *)
let q t = Float.round (t *. 1000.0) /. 1000.0

let gen_schedule rng ~(cfg : Config.t) ~(spec : Topology.spec) ~duration =
  let gs = spec.Topology.group_sizes in
  let ng = Array.length gs in
  let heavy =
    Config.global_of cfg.Config.system = Config.Per_group_raft && ng >= 3
  in
  let t_lo = 0.5 and t_hi = Float.max 1.0 (0.4 *. duration) in
  let rt () = q (t_lo +. Rng.float rng (t_hi -. t_lo)) in
  let win lo hi = q (lo +. Rng.float rng (hi -. lo)) in
  let pick_g () = Rng.int rng ng in
  let pick_link () =
    let s = pick_g () in
    (s, (s + 1 + Rng.int rng (ng - 1)) mod ng)
  in
  let cls () =
    match Rng.int rng 3 with 0 -> F.Any | 1 -> F.Bulk | _ -> F.Control
  in
  (* Never more than f concurrently-faulty nodes per group; at most one
     heavy fault (leader crash / group crash / partition) per schedule
     so recoveries never compound. *)
  let crashed = Array.make ng [] in
  let heavy_used = ref false in
  let events = ref [] in
  let add at fault = events := { F.at; fault } :: !events in
  let gen_slow_cpu () =
    let g = pick_g () in
    let n = Rng.int rng gs.(g) in
    add (rt ())
      (F.Slow_cpu
         {
           addr = { Topology.g; n };
           factor = float_of_int (2 + Rng.int rng 6);
           for_s = win 1.0 3.0;
         })
  in
  let n_faults = 2 + Rng.int rng 4 in
  for _ = 1 to n_faults do
    match Rng.int rng (if heavy then 9 else 6) with
    | 0 -> gen_slow_cpu ()
    | 1 ->
        add (rt ())
          (F.Wan_degrade
             {
               g = pick_g ();
               factor = float_of_int (5 + Rng.int rng 10) /. 20.0;
               for_s = win 1.0 3.0;
             })
    | 2 ->
        add (rt ())
          (F.Lan_degrade
             {
               g = pick_g ();
               factor = float_of_int (5 + Rng.int rng 10) /. 20.0;
               for_s = win 1.0 2.0;
             })
    | 3 ->
        let src_g, dst_g = pick_link () in
        add (rt ())
          (F.Link_delay
             {
               src_g;
               dst_g;
               add_s = float_of_int (20 + Rng.int rng 80) /. 1000.0;
               cls = cls ();
               for_s = win 1.0 2.0;
             })
    | 4 ->
        let src_g, dst_g = pick_link () in
        add (rt ())
          (F.Link_dup
             {
               src_g;
               dst_g;
               copies = 1 + Rng.int rng 2;
               every = 1 + Rng.int rng 3;
               cls = cls ();
               for_s = win 1.0 2.0;
             })
    | 5 ->
        (* Follower crash + recover: allowed for every system. *)
        let g = pick_g () in
        let f = Intmath.pbft_f gs.(g) in
        let candidates =
          List.filter
            (fun n -> not (List.mem n crashed.(g)))
            (List.init (gs.(g) - 1) (fun i -> i + 1))
        in
        if List.length crashed.(g) < f && candidates <> [] then begin
          let n = List.nth candidates (Rng.int rng (List.length candidates)) in
          crashed.(g) <- n :: crashed.(g);
          let at = rt () in
          add at (F.Crash_node { Topology.g; n });
          add (q (at +. win 1.0 2.0)) (F.Recover_node { Topology.g; n })
        end
        else gen_slow_cpu ()
    | 6 ->
        (* Acting-leader crash: exercises the PBFT view change and the
           engine's leader migration. *)
        let g = pick_g () in
        if
          (not !heavy_used)
          && crashed.(g) = []
          && Intmath.pbft_f gs.(g) >= 1
        then begin
          heavy_used := true;
          crashed.(g) <- [ 0 ];
          let at = rt () in
          add at (F.Crash_node { Topology.g; n = 0 });
          add (q (at +. win 2.0 3.5)) (F.Recover_node { Topology.g; n = 0 })
        end
        else gen_slow_cpu ()
    | 7 ->
        let g = pick_g () in
        if (not !heavy_used) && crashed.(g) = [] then begin
          heavy_used := true;
          crashed.(g) <- List.init gs.(g) (fun n -> n);
          let at = rt () in
          add at (F.Crash_group g);
          add (q (at +. win 1.0 2.0)) (F.Recover_group g)
        end
        else gen_slow_cpu ()
    | _ ->
        if not !heavy_used then begin
          heavy_used := true;
          if Rng.bool rng then
            add (rt ())
              (F.Partition { groups = [ pick_g () ]; for_s = win 0.5 1.5 })
          else
            let src_g, dst_g = pick_link () in
            add (rt ())
              (F.Link_drop
                 {
                   src_g;
                   dst_g;
                   every = 1 + Rng.int rng 4;
                   cls = cls ();
                   for_s = win 0.5 1.5;
                 })
        end
        else gen_slow_cpu ()
  done;
  F.sorted (List.rev !events)

(* ------------------------------------------------------------------ *)
(* Adversary-plan generation (the campaign's third axis)               *)
(* ------------------------------------------------------------------ *)

(* One named strategy drawn into a concrete timed plan, with any
   trigger faults the strategy needs to bite (split-votes only matters
   while a view change is in flight, so it rides on a leader
   crash+recover). Each plan compromises exactly one node per target
   group — within every group's f >= 1 tolerance — so, as with fault
   generation, a safety violation under a generated plan is a real bug.
   Liveness inside the attack window is not promised (a Byzantine
   leader may stall its group); windows always close, and the liveness
   watchdog only judges the post-heal run. *)
let gen_adversary rng ~(cfg : Config.t) ~(spec : Topology.spec) ~duration
    ~strategy =
  ignore cfg;
  let gs = spec.Topology.group_sizes in
  let ng = Array.length gs in
  let t_lo = 0.5 and t_hi = Float.max 1.0 (0.4 *. duration) in
  let rt () = q (t_lo +. Rng.float rng (t_hi -. t_lo)) in
  let win lo hi = q (lo +. Rng.float rng (hi -. lo)) in
  let g = Rng.int rng ng in
  let at = rt () in
  let for_s = win 1.5 3.0 in
  let follower () = { Topology.g; n = 1 + Rng.int rng (gs.(g) - 1) } in
  match strategy with
  | "equivocate" ->
      ([ { A.at; strategy = A.Equivocate { target = A.Leader g; for_s } } ], [])
  | "equivocate-raft" ->
      ( [
          {
            A.at;
            strategy = A.Equivocate_raft { target = A.Leader g; for_s };
          };
        ],
        [] )
  | "withhold" ->
      ([ { A.at; strategy = A.Withhold { target = A.Leader g; for_s } } ], [])
  | "split-votes" ->
      (* The compromised follower forks its view-change votes across
         the recovery the leader crash forces. *)
      let n = follower () in
      ( [ { A.at; strategy = A.Split_votes { target = A.Node n; for_s } } ],
        F.sorted
          [
            { F.at; fault = F.Crash_node { Topology.g; n = 0 } };
            {
              F.at = q (at +. win 1.5 2.5);
              fault = F.Recover_node { Topology.g; n = 0 };
            };
          ] )
  | "replay" ->
      ( [
          {
            A.at;
            strategy =
              A.Replay
                {
                  target = A.Leader g;
                  copies = 1 + Rng.int rng 2;
                  gap_s = q (float_of_int (50 + Rng.int rng 200) /. 1000.0);
                  for_s;
                };
          };
        ],
        [] )
  | "delay-valid" ->
      ( [
          {
            A.at;
            strategy =
              A.Delay_valid
                {
                  target = A.Node (follower ());
                  add_s = q (float_of_int (50 + Rng.int rng 250) /. 1000.0);
                  for_s;
                };
          };
        ],
        [] )
  | "tamper" ->
      ( [
          {
            A.at;
            strategy = A.Tamper { target = A.Node (follower ()); for_s };
          };
        ],
        [] )
  | s -> invalid_arg ("Chaos.gen_adversary: unknown strategy " ^ s)

(* ------------------------------------------------------------------ *)
(* Reconfiguration-scenario generation (the fourth campaign axis)      *)
(* ------------------------------------------------------------------ *)

let reconfig_kinds =
  [ "node-join"; "node-leave"; "leader-move"; "group-add"; "group-remove" ]

(* One named membership-change kind drawn into a concrete timed plan,
   plus the chaos that makes it a drill rather than a demo: joins get a
   50% chance of a mid-transfer crash of the joining hardware itself
   (exercising the fetch lane's stall watchdog, donor rotation and
   capped backoff), the other kinds get light degradations. Every fault
   heals and no fault exceeds the evolving membership's tolerance, so a
   violation under a generated scenario is a real bug. The join-crash
   addresses refer to slots of the *provisioned* topology (the joining
   node is [gs.(g)], the joining group is [ng]) — [run_schedule]
   provisions before arming the injector, so those slots exist. *)
let gen_reconfig rng ~(cfg : Config.t) ~(spec : Topology.spec) ~duration ~kind
    =
  ignore cfg;
  let gs = spec.Topology.group_sizes in
  let ng = Array.length gs in
  let t_lo = 1.0 and t_hi = Float.max 1.5 (0.35 *. duration) in
  let at = q (t_lo +. Rng.float rng (t_hi -. t_lo)) in
  let win lo hi = q (lo +. Rng.float rng (hi -. lo)) in
  let g = Rng.int rng ng in
  let mid_transfer_crash addr =
    if Rng.bool rng then
      F.sorted
        [
          { F.at = q (at +. win 0.2 0.7); fault = F.Crash_node addr };
          { F.at = q (at +. win 1.2 2.2); fault = F.Recover_node addr };
        ]
    else []
  in
  let light_degrade target_g =
    if Rng.bool rng then
      [
        {
          F.at = q (at +. win 0.0 0.5);
          fault =
            F.Wan_degrade
              {
                g = target_g;
                factor = float_of_int (8 + Rng.int rng 8) /. 20.0;
                for_s = win 1.0 2.0;
              };
        };
      ]
    else []
  in
  match kind with
  | "node-join" ->
      ( [ { R.at; cmd = R.Add_node g } ],
        mid_transfer_crash { Topology.g; n = gs.(g) } )
  | "node-leave" -> (
      (* The validation floor: a group must keep n >= 4 after the
         retirement. *)
      match List.filter (fun g -> gs.(g) >= 5) (List.init ng Fun.id) with
      | [] ->
          invalid_arg
            "Chaos.gen_reconfig: node-leave needs a group of >= 5 nodes"
      | cs ->
          let g = List.nth cs (Rng.int rng (List.length cs)) in
          ([ { R.at; cmd = R.Remove_node g } ], light_degrade g))
  | "leader-move" ->
      let n = 1 + Rng.int rng (gs.(g) - 1) in
      ([ { R.at; cmd = R.Move_leader { Topology.g; n } } ], light_degrade g)
  | "group-add" ->
      let size = 4 + Rng.int rng 2 in
      ( [ { R.at; cmd = R.Add_group { size } } ],
        mid_transfer_crash { Topology.g = ng; n = 0 } )
  | "group-remove" ->
      if ng < 3 then
        invalid_arg "Chaos.gen_reconfig: group-remove needs >= 3 groups"
      else
        let g = 1 + Rng.int rng (ng - 1) in
        ([ { R.at; cmd = R.Remove_group g } ], light_degrade g)
  | k -> invalid_arg ("Chaos.gen_reconfig: unknown kind " ^ k)

(* ------------------------------------------------------------------ *)
(* Running one schedule                                                *)
(* ------------------------------------------------------------------ *)

type outcome = {
  schedule : F.schedule;
  adversary : A.plan;
  reconfig : R.plan;
  violations : Invariants.violation list;
  unaccountable : Invariants.violation list;
      (* violations not backed by a verified conflicting-signed pair *)
  evidence : Evidence.pair list;
  executed : int;
  injected : int;
  adv_injected : int;
  epochs : int;  (* reconfiguration boundaries executed *)
  transfer_retries : int;  (* state-transfer stall recoveries *)
  ran_until : float;
}

let run_schedule ?(duration = 10.0) ?liveness_bound_s ?trace
    ?registry ?(adversary = []) ?(reconfig = []) ?(domains = 1)
    ~(spec : Topology.spec) ~(cfg : Config.t) schedule =
  (* Recovering from a healed group crash legitimately spans several
     election timeouts (takeover, catch-up, transfer-back), so the
     default stall bound scales with the configured timeout rather than
     asserting a fixed number. *)
  let liveness_bound_s =
    match liveness_bound_s with
    | Some b -> b
    | None -> Float.max 3.0 (4.0 *. cfg.Config.election_timeout_s)
  in
  (* Each run allocates a full cluster; keep long campaigns flat. *)
  Gc.compact ();
  let domains = min domains (Array.length spec.Topology.group_sizes) in
  let parallel = domains > 1 in
  if parallel then begin
    (* Same single-writer exclusions as the runner's parallel mode. *)
    if trace <> None then
      invalid_arg "Chaos.run_schedule: tracing requires domains = 1";
    if registry <> None then
      invalid_arg "Chaos.run_schedule: a registry requires domains = 1";
    if adversary <> [] then
      invalid_arg "Chaos.run_schedule: adversary plans require domains = 1";
    if reconfig <> [] then
      invalid_arg
        "Chaos.run_schedule: reconfiguration plans require domains = 1"
  end;
  (* Reconfiguration plans expand the topology up front (dark slots for
     everything the plan will activate); an empty plan returns the spec
     unchanged, byte-identically. *)
  (match R.validate ~group_sizes:spec.Topology.group_sizes reconfig with
  | Ok () -> ()
  | Error e -> invalid_arg ("Chaos.run_schedule: bad reconfiguration plan: " ^ e));
  let provisioned = R.provision ~spec reconfig in
  let spec = provisioned.R.p_spec in
  let ng = Array.length spec.Topology.group_sizes in
  let cfg =
    if parallel && not cfg.Config.independent_stores then
      { cfg with Config.independent_stores = true }
    else cfg
  in
  let sim =
    Sim.create ~shards:ng ~lookahead:(Topology.min_wan_one_way spec) ()
  in
  let topo = Topology.create sim spec in
  let engine = Engine.create sim topo cfg in
  (match trace with Some tr -> Engine.set_trace engine tr | None -> ());
  let controller = Reconfig.arm engine ~provisioned reconfig in
  let inj = Injector.create ?trace ?registry ~spec ~schedule engine sim topo in
  let adv =
    match adversary with
    | [] -> None
    | plan -> Some (Adversary.create ?trace ?registry ~spec ~plan engine sim)
  in
  (* A join is only "healed" once its state transfer lands and the
     admission epoch executes; give it a transfer allowance past the
     command time before the liveness watchdog starts judging. *)
  let reconfig_heal =
    if reconfig = [] then neg_infinity
    else
      R.last_time reconfig
      +.
      if
        List.exists
          (fun (e : R.event) ->
            match e.R.cmd with
            | R.Add_node _ | R.Add_group _ -> true
            | _ -> false)
          reconfig
      then 6.0
      else 1.5
  in
  let heal =
    Float.max reconfig_heal
      (Float.max (F.heal_time schedule) (A.heal_time adversary))
  in
  let inv =
    match adv with
    | None -> Invariants.create ~liveness_bound_s ~heal_by:heal engine sim
    | Some a ->
        Invariants.create ~liveness_bound_s ~heal_by:heal
          ~compromised:(Adversary.is_compromised a)
          ~evidence:(Adversary.evidence a) engine sim
  in
  Engine.start engine;
  Injector.arm inj;
  (match adv with Some a -> Adversary.arm a | None -> ());
  (* Run past the heal point far enough for the liveness watchdog to
     have a verdict. *)
  let until =
    if Float.is_finite heal then
      Float.max duration (heal +. liveness_bound_s +. 1.5)
    else duration
  in
  if parallel then begin
    (* No periodic checker events inside the run: the checkers read
       cross-shard engine state, so they poll at the lookahead-window
       barriers instead — the driver's single-threaded safe points. *)
    let period = 0.25 in
    let last = ref neg_infinity in
    Sim.run_parallel sim ~domains ~until
      ~on_window:(fun w ->
        if w -. !last >= period then begin
          last := w;
          Invariants.check_now inv
        end)
      ()
  end
  else begin
    Invariants.attach inv;
    Sim.run sim ~until
  end;
  Invariants.finalize inv;
  (* The controller's epoch-aware end-of-run checks (boundary agreement
     across leaders, on-chain config records, join state-transfer
     equality) merge into the same violation stream the checkers
     feed. *)
  let reconfig_violations =
    List.map
      (fun (check, detail) ->
        { Invariants.at = Sim.now sim; check; detail; evidence = None })
      (Reconfig.final_violations controller)
  in
  let violations = Invariants.violations inv @ reconfig_violations in
  let unaccountable =
    (* A violation is accounted for when it carries a conflict pair
       that verifies against the run's evidence log — the adversary was
       caught red-handed, not the protocol silently broken. Without an
       adversary every violation is unaccountable. *)
    List.filter
      (fun (v : Invariants.violation) ->
        match (v.Invariants.evidence, adv) with
        | Some p, Some a -> not (Evidence.verify (Adversary.evidence a) p)
        | _ -> true)
      violations
  in
  {
    schedule;
    adversary;
    reconfig;
    violations;
    unaccountable;
    evidence =
      (match adv with
      | Some a -> Evidence.conflicts (Adversary.evidence a)
      | None -> []);
    executed = Engine.entries_executed_total engine;
    injected = Injector.injected_total inj;
    adv_injected = (match adv with Some a -> Adversary.injected_total a | None -> 0);
    epochs = Reconfig.epochs controller;
    transfer_retries = Reconfig.transfer_retries controller;
    ran_until = until;
  }

let failed outcome = outcome.violations <> []

(* The CI pass criterion under an adversary: every run either upholds
   all invariants or pins each violation on a provably-equivocating
   node. *)
let accountable outcome = outcome.unaccountable = []

(* ------------------------------------------------------------------ *)
(* Schedule shrinking (delta debugging)                                *)
(* ------------------------------------------------------------------ *)

(* Classic ddmin over the event list: try dropping ever-finer chunks,
   keeping any reduction that still fails. [fails] is the oracle —
   normally a full re-run, but tests may substitute any predicate. *)
let shrink ~fails schedule =
  let drop_chunk lst ~start ~len =
    List.filteri (fun i _ -> i < start || i >= start + len) lst
  in
  let rec go n sched =
    let len = List.length sched in
    if len <= 1 then sched
    else begin
      let n = min n len in
      let chunk = (len + n - 1) / n in
      let rec try_chunks start =
        if start >= len then None
        else
          let reduced = drop_chunk sched ~start ~len:chunk in
          if reduced <> [] && fails reduced then Some reduced
          else try_chunks (start + chunk)
      in
      match try_chunks 0 with
      | Some reduced -> go (max 2 (n - 1)) reduced
      | None -> if n >= len then sched else go (min len (2 * n)) sched
    end
  in
  if fails schedule then go 2 schedule else schedule

(* ------------------------------------------------------------------ *)
(* Drill and campaign                                                  *)
(* ------------------------------------------------------------------ *)

let repro_line ?adversary ?reconfig ?(domains = 1) ~seed
    ~(system : Config.system) () =
  Printf.sprintf "massbft drill --seed %Ld --system %s --domains %d%s%s" seed
    (String.lowercase_ascii (Config.system_name system))
    domains
    (match reconfig with None -> "" | Some k -> " --reconfig " ^ k)
    (match adversary with None -> "" | Some s -> " --adversary " ^ s)

type drill_result = {
  seed : int64;
  system : Config.system;
  strategy : string option;  (* adversary axis point, if any *)
  reconfig_kind : string option;  (* reconfiguration axis point, if any *)
  outcome : outcome;
  shrunk : F.schedule option;
      (* minimal failing schedule, when the original failed *)
  shrunk_adversary : A.plan option;
      (* minimal failing adversary plan, when one was in play *)
}

let drill ?duration ?liveness_bound_s ?trace ?registry ?(shrink_failures = true)
    ?adversary ?reconfig ?domains ~spec ~cfg ~seed () =
  let rng = Rng.create seed in
  let gen_duration = Option.value ~default:10.0 duration in
  (* With an adversary strategy the drill goes all-in on it: the fault
     schedule carries only the strategy's trigger faults, so the attack
     window never compounds with unrelated random faults into a
     scenario beyond the system's claimed tolerance. A reconfiguration
     kind contributes its membership-change plan plus its own paired
     chaos; combined with an adversary, both land in the same run (the
     "Byzantine leader during a membership change" drill). *)
  let rplan, rfaults =
    match reconfig with
    | None -> ([], [])
    | Some kind -> gen_reconfig rng ~cfg ~spec ~duration:gen_duration ~kind
  in
  let schedule, plan =
    match adversary with
    | None ->
        if reconfig = None then
          (gen_schedule rng ~cfg ~spec ~duration:gen_duration, [])
        else (rfaults, [])
    | Some strategy ->
        let plan, triggers =
          gen_adversary rng ~cfg ~spec ~duration:gen_duration ~strategy
        in
        (F.sorted (rfaults @ triggers), plan)
  in
  let outcome =
    run_schedule ?duration ?liveness_bound_s ?trace ?registry ?domains
      ~adversary:plan ~reconfig:rplan ~spec ~cfg schedule
  in
  let rerun ~schedule ~plan =
    failed
      (run_schedule ?duration ?liveness_bound_s ?domains ~adversary:plan
         ~reconfig:rplan ~spec ~cfg schedule)
  in
  let shrunk, shrunk_adversary =
    if failed outcome && shrink_failures then begin
      (* ddmin each axis in turn: first the adversary plan against the
         full trigger schedule, then the schedule under the minimal
         plan. The reconfiguration plan is the scenario's identity and
         is never shrunk. *)
      let min_plan =
        if plan = [] then []
        else shrink ~fails:(fun p -> rerun ~schedule ~plan:p) plan
      in
      let min_sched =
        if schedule = [] then []
        else shrink ~fails:(fun s -> rerun ~schedule:s ~plan:min_plan) schedule
      in
      ( Some min_sched,
        (match adversary with None -> None | Some _ -> Some min_plan) )
    end
    else (None, None)
  in
  {
    seed;
    system = cfg.Config.system;
    strategy = adversary;
    reconfig_kind = reconfig;
    outcome;
    shrunk;
    shrunk_adversary;
  }

type campaign_result = {
  total : int;
  results : drill_result list;  (* in run order *)
  failures : drill_result list;
}

let campaign ?duration ?liveness_bound_s ?(shrink_failures = false)
    ?(systems = Config.all_systems) ?(adversaries = []) ?(reconfigs = [])
    ?on_run ?domains ~spec ~cfg ~seeds () =
  (* The axes: systems x seeds x adversary strategies x reconfiguration
     kinds. Empty strategy/kind lists keep the classic two-axis fault
     campaign; both together drill Byzantine behaviour during
     membership changes. *)
  let adv_axis =
    match adversaries with
    | [] -> [ None ]
    | strategies -> List.map Option.some strategies
  in
  let rec_axis =
    match reconfigs with
    | [] -> [ None ]
    | kinds -> List.map Option.some kinds
  in
  let results =
    List.concat_map
      (fun system ->
        List.concat_map
          (fun adversary ->
            List.concat_map
              (fun reconfig ->
                List.map
                  (fun seed ->
                    let r =
                      drill ?duration ?liveness_bound_s ~shrink_failures
                        ?adversary ?reconfig ?domains ~spec
                        ~cfg:{ cfg with Config.system } ~seed ()
                    in
                    (match on_run with Some f -> f r | None -> ());
                    r)
                  seeds)
              rec_axis)
          adv_axis)
      systems
  in
  {
    total = List.length results;
    results;
    failures = List.filter (fun r -> failed r.outcome) results;
  }

let pp_drill fmt r =
  let status =
    if failed r.outcome then
      Printf.sprintf "FAIL (%d violations%s)"
        (List.length r.outcome.violations)
        (if r.outcome.unaccountable = [] then ", all evidenced" else "")
    else "ok"
  in
  Format.fprintf fmt "%-9s seed=%-6Ld %s=%-2d%s executed=%-5d %s"
    (Config.system_name r.system)
    r.seed
    (match r.strategy with
    | None -> "faults"
    | Some s -> s)
    (List.length r.outcome.schedule + List.length r.outcome.adversary)
    (match r.reconfig_kind with
    | None -> ""
    | Some k -> Printf.sprintf " %s epochs=%d" k r.outcome.epochs)
    r.outcome.executed status
