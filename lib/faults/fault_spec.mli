(** The fault-schedule DSL (chaos layer, DESIGN.md "Fault model").

    A schedule is a list of timed fault events applied to a running
    deployment by {!Injector}. Every spec has a stable one-line text
    form so a failing chaos schedule travels as readable lines — a CI
    artifact, a bug report, a [massbft drill] repro — and parses back
    into exactly the same injection:

    {v
    @3 crash-node g0/n0
    @4.5 recover-node g0/n0
    @2 link-drop g0->g1 every 3 class bulk for 2.5
    @2 partition g2 for 1.5
    @1 slow-cpu g1/n2 factor 4 for 3
    v} *)

module Topology = Massbft_sim.Topology

(** NIC service class selector for link faults: entry payloads travel
    [Bulk], consensus votes and acks [Control]. *)
type service_class = Any | Bulk | Control

val class_name : service_class -> string

type fault =
  | Crash_node of Topology.addr
  | Recover_node of Topology.addr
  | Crash_group of int
  | Recover_group of int
  | Partition of { groups : int list; for_s : float }
      (** cut all WAN traffic between [groups] and the remaining groups
          (both directions) for [for_s] seconds *)
  | Link_drop of {
      src_g : int;
      dst_g : int;
      every : int;  (** drop every [every]-th matching message (1 = all) *)
      cls : service_class;
      for_s : float;
    }
  | Link_delay of {
      src_g : int;
      dst_g : int;
      add_s : float;  (** added to the propagation leg *)
      cls : service_class;
      for_s : float;
    }
  | Link_dup of {
      src_g : int;
      dst_g : int;
      copies : int;  (** extra deliveries per duplicated message *)
      every : int;  (** duplicate every [every]-th matching message *)
      cls : service_class;
      for_s : float;
    }
  | Wan_degrade of { g : int; factor : float; for_s : float }
      (** scale every node-of-[g]'s WAN bandwidth by [factor] in (0,1] *)
  | Lan_degrade of { g : int; factor : float; for_s : float }
  | Slow_cpu of { addr : Topology.addr; factor : float; for_s : float }
      (** gray failure: the node computes [factor >= 1] times slower *)

type event = { at : float; fault : fault }
type schedule = event list

val kind_name : fault -> string
(** Stable snake_case kind labels ("crash_node", "link_drop", ...) used
    by the injector's metrics and trace spans. *)

val fault_to_string : fault -> string
val event_to_string : event -> string

val to_string : schedule -> string
(** One event per line, each terminated by a newline. *)

exception Parse_error of string

val of_string : string -> schedule
(** Parses the {!to_string} form. Blank lines and [#] comment lines are
    skipped. Raises {!Parse_error} on malformed input.
    [of_string (to_string s)] reproduces [s] for every schedule the
    chaos generator emits (times quantized to 1 ms). *)

val validate : group_sizes:int array -> schedule -> (unit, string) result
(** Structural checks against a deployment shape: addresses in range,
    positive windows, degradation factors in (0,1], slow-CPU factors
    >= 1, link faults on WAN links only. *)

val heal_time : schedule -> float
(** Time by which every injected fault has healed: window faults at
    [at +. for_s], crashes at their matching recover event — infinity
    if a crash is never recovered (callers then disable liveness
    expectations). 0 for the empty schedule. *)

val sorted : schedule -> schedule
(** Stable sort by injection time. *)
