(* The fault-schedule DSL: typed fault specs with a stable one-line
   text form, so a failing chaos schedule travels as a few readable
   lines (a CI artifact, a bug report, a `massbft drill` repro) and
   parses back into exactly the same injection. *)

module Topology = Massbft_sim.Topology

type service_class = Any | Bulk | Control

let class_name = function Any -> "any" | Bulk -> "bulk" | Control -> "control"

let class_of_name = function
  | "any" -> Some Any
  | "bulk" -> Some Bulk
  | "control" -> Some Control
  | _ -> None

type fault =
  | Crash_node of Topology.addr
  | Recover_node of Topology.addr
  | Crash_group of int
  | Recover_group of int
  | Partition of { groups : int list; for_s : float }
  | Link_drop of {
      src_g : int;
      dst_g : int;
      every : int;
      cls : service_class;
      for_s : float;
    }
  | Link_delay of {
      src_g : int;
      dst_g : int;
      add_s : float;
      cls : service_class;
      for_s : float;
    }
  | Link_dup of {
      src_g : int;
      dst_g : int;
      copies : int;
      every : int;
      cls : service_class;
      for_s : float;
    }
  | Wan_degrade of { g : int; factor : float; for_s : float }
  | Lan_degrade of { g : int; factor : float; for_s : float }
  | Slow_cpu of { addr : Topology.addr; factor : float; for_s : float }

type event = { at : float; fault : fault }
type schedule = event list

let kind_name = function
  | Crash_node _ -> "crash_node"
  | Recover_node _ -> "recover_node"
  | Crash_group _ -> "crash_group"
  | Recover_group _ -> "recover_group"
  | Partition _ -> "partition"
  | Link_drop _ -> "link_drop"
  | Link_delay _ -> "link_delay"
  | Link_dup _ -> "link_dup"
  | Wan_degrade _ -> "wan_degrade"
  | Lan_degrade _ -> "lan_degrade"
  | Slow_cpu _ -> "slow_cpu"

(* %g keeps the text form compact and round-trips every value the
   generator emits (times quantized to 1 ms, small factors). *)
let fl = Printf.sprintf "%g"

let addr_str (a : Topology.addr) =
  Printf.sprintf "g%d/n%d" a.Topology.g a.Topology.n

let fault_to_string = function
  | Crash_node a -> "crash-node " ^ addr_str a
  | Recover_node a -> "recover-node " ^ addr_str a
  | Crash_group g -> Printf.sprintf "crash-group g%d" g
  | Recover_group g -> Printf.sprintf "recover-group g%d" g
  | Partition { groups; for_s } ->
      Printf.sprintf "partition %s for %s"
        (String.concat ","
           (List.map (fun g -> Printf.sprintf "g%d" g) groups))
        (fl for_s)
  | Link_drop { src_g; dst_g; every; cls; for_s } ->
      Printf.sprintf "link-drop g%d->g%d every %d class %s for %s" src_g dst_g
        every (class_name cls) (fl for_s)
  | Link_delay { src_g; dst_g; add_s; cls; for_s } ->
      Printf.sprintf "link-delay g%d->g%d add %s class %s for %s" src_g dst_g
        (fl add_s) (class_name cls) (fl for_s)
  | Link_dup { src_g; dst_g; copies; every; cls; for_s } ->
      Printf.sprintf "link-dup g%d->g%d copies %d every %d class %s for %s"
        src_g dst_g copies every (class_name cls) (fl for_s)
  | Wan_degrade { g; factor; for_s } ->
      Printf.sprintf "wan-degrade g%d factor %s for %s" g (fl factor)
        (fl for_s)
  | Lan_degrade { g; factor; for_s } ->
      Printf.sprintf "lan-degrade g%d factor %s for %s" g (fl factor)
        (fl for_s)
  | Slow_cpu { addr; factor; for_s } ->
      Printf.sprintf "slow-cpu %s factor %s for %s" (addr_str addr)
        (fl factor) (fl for_s)

let event_to_string { at; fault } =
  Printf.sprintf "@%s %s" (fl at) (fault_to_string fault)

let to_string sched =
  String.concat "" (List.map (fun e -> event_to_string e ^ "\n") sched)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse_float what s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail "bad %s %S" what s

let parse_int what s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail "bad %s %S" what s

let parse_gid s =
  if String.length s >= 2 && s.[0] = 'g' then
    parse_int "group" (String.sub s 1 (String.length s - 1))
  else fail "bad group %S (expected gN)" s

let parse_addr s =
  match String.index_opt s '/' with
  | Some i
    when i >= 2
         && s.[0] = 'g'
         && String.length s > i + 2
         && s.[i + 1] = 'n' ->
      let g = parse_int "group" (String.sub s 1 (i - 1)) in
      let n =
        parse_int "node" (String.sub s (i + 2) (String.length s - i - 2))
      in
      { Topology.g; n }
  | _ -> fail "bad address %S (expected gG/nN)" s

let parse_link s =
  match
    String.index_opt s '-' |> Option.map (fun i -> (i, String.length s))
  with
  | Some (i, len) when len > i + 2 && s.[i + 1] = '>' ->
      ( parse_gid (String.sub s 0 i),
        parse_gid (String.sub s (i + 2) (len - i - 2)) )
  | _ -> fail "bad link %S (expected gA->gB)" s

let parse_class s =
  match class_of_name s with
  | Some c -> c
  | None -> fail "bad service class %S" s

(* [key v key v ...] pairs after the fault's positional arguments. *)
let rec kw_args = function
  | [] -> []
  | [ k ] -> fail "missing value for %S" k
  | k :: v :: rest -> (k, v) :: kw_args rest

let kw what args k =
  match List.assoc_opt k args with
  | Some v -> v
  | None -> fail "%s: missing %S" what k

let fault_of_tokens = function
  | [ "crash-node"; a ] -> Crash_node (parse_addr a)
  | [ "recover-node"; a ] -> Recover_node (parse_addr a)
  | [ "crash-group"; g ] -> Crash_group (parse_gid g)
  | [ "recover-group"; g ] -> Recover_group (parse_gid g)
  | "partition" :: groups :: rest ->
      let args = kw_args rest in
      Partition
        {
          groups =
            List.map parse_gid (String.split_on_char ',' groups);
          for_s = parse_float "duration" (kw "partition" args "for");
        }
  | "link-drop" :: link :: rest ->
      let src_g, dst_g = parse_link link in
      let args = kw_args rest in
      Link_drop
        {
          src_g;
          dst_g;
          every = parse_int "every" (kw "link-drop" args "every");
          cls = parse_class (kw "link-drop" args "class");
          for_s = parse_float "duration" (kw "link-drop" args "for");
        }
  | "link-delay" :: link :: rest ->
      let src_g, dst_g = parse_link link in
      let args = kw_args rest in
      Link_delay
        {
          src_g;
          dst_g;
          add_s = parse_float "delay" (kw "link-delay" args "add");
          cls = parse_class (kw "link-delay" args "class");
          for_s = parse_float "duration" (kw "link-delay" args "for");
        }
  | "link-dup" :: link :: rest ->
      let src_g, dst_g = parse_link link in
      let args = kw_args rest in
      Link_dup
        {
          src_g;
          dst_g;
          copies = parse_int "copies" (kw "link-dup" args "copies");
          every = parse_int "every" (kw "link-dup" args "every");
          cls = parse_class (kw "link-dup" args "class");
          for_s = parse_float "duration" (kw "link-dup" args "for");
        }
  | "wan-degrade" :: g :: rest ->
      let args = kw_args rest in
      Wan_degrade
        {
          g = parse_gid g;
          factor = parse_float "factor" (kw "wan-degrade" args "factor");
          for_s = parse_float "duration" (kw "wan-degrade" args "for");
        }
  | "lan-degrade" :: g :: rest ->
      let args = kw_args rest in
      Lan_degrade
        {
          g = parse_gid g;
          factor = parse_float "factor" (kw "lan-degrade" args "factor");
          for_s = parse_float "duration" (kw "lan-degrade" args "for");
        }
  | "slow-cpu" :: a :: rest ->
      let args = kw_args rest in
      Slow_cpu
        {
          addr = parse_addr a;
          factor = parse_float "factor" (kw "slow-cpu" args "factor");
          for_s = parse_float "duration" (kw "slow-cpu" args "for");
        }
  | tok :: _ -> fail "unknown fault %S" tok
  | [] -> fail "empty fault"

let event_of_string line =
  match
    List.filter
      (fun s -> s <> "")
      (String.split_on_char ' ' (String.trim line))
  with
  | at :: rest when String.length at > 1 && at.[0] = '@' ->
      {
        at = parse_float "time" (String.sub at 1 (String.length at - 1));
        fault = fault_of_tokens rest;
      }
  | _ -> fail "bad event line %S (expected \"@TIME FAULT ...\")" line

let of_string text =
  String.split_on_char '\n' text
  |> List.filter (fun l ->
         let l = String.trim l in
         l <> "" && not (String.length l > 0 && l.[0] = '#'))
  |> List.map event_of_string

(* ------------------------------------------------------------------ *)
(* Validation and schedule queries                                     *)
(* ------------------------------------------------------------------ *)

let validate ~(group_sizes : int array) sched =
  let ng = Array.length group_sizes in
  let check_g what g =
    if g < 0 || g >= ng then Error (Printf.sprintf "%s: group %d out of range" what g)
    else Ok ()
  in
  let check_addr what (a : Topology.addr) =
    match check_g what a.Topology.g with
    | Error _ as e -> e
    | Ok () ->
        if a.Topology.n < 0 || a.Topology.n >= group_sizes.(a.Topology.g) then
          Error
            (Printf.sprintf "%s: node %s out of range" what (addr_str a))
        else Ok ()
  in
  let check_pos what v =
    if v > 0.0 && Float.is_finite v then Ok ()
    else Error (Printf.sprintf "%s: duration must be positive" what)
  in
  let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let check_fault f =
    let what = kind_name f in
    match f with
    | Crash_node a | Recover_node a -> check_addr what a
    | Crash_group g | Recover_group g -> check_g what g
    | Partition { groups; for_s } ->
        check_pos what for_s >>= fun () ->
        if groups = [] then Error "partition: empty group list"
        else
          List.fold_left
            (fun acc g -> acc >>= fun () -> check_g what g)
            (Ok ()) groups
    | Link_drop { src_g; dst_g; every; for_s; _ } ->
        check_g what src_g >>= fun () ->
        check_g what dst_g >>= fun () ->
        check_pos what for_s >>= fun () ->
        if every < 1 then Error "link-drop: every must be >= 1"
        else if src_g = dst_g then Error "link-drop: WAN links only"
        else Ok ()
    | Link_delay { src_g; dst_g; add_s; for_s; _ } ->
        check_g what src_g >>= fun () ->
        check_g what dst_g >>= fun () ->
        check_pos what for_s >>= fun () ->
        if add_s <= 0.0 || not (Float.is_finite add_s) then
          Error "link-delay: add must be positive"
        else if src_g = dst_g then Error "link-delay: WAN links only"
        else Ok ()
    | Link_dup { src_g; dst_g; copies; every; for_s; _ } ->
        check_g what src_g >>= fun () ->
        check_g what dst_g >>= fun () ->
        check_pos what for_s >>= fun () ->
        if copies < 1 then Error "link-dup: copies must be >= 1"
        else if every < 1 then Error "link-dup: every must be >= 1"
        else if src_g = dst_g then Error "link-dup: WAN links only"
        else Ok ()
    | Wan_degrade { g; factor; for_s } | Lan_degrade { g; factor; for_s } ->
        check_g what g >>= fun () ->
        check_pos what for_s >>= fun () ->
        if factor > 0.0 && factor <= 1.0 then Ok ()
        else Error (what ^ ": factor must be in (0, 1]")
    | Slow_cpu { addr; factor; for_s } ->
        check_addr what addr >>= fun () ->
        check_pos what for_s >>= fun () ->
        if factor >= 1.0 && Float.is_finite factor then Ok ()
        else Error "slow-cpu: factor must be >= 1"
  in
  List.fold_left
    (fun acc { at; fault } ->
      acc >>= fun () ->
      if at < 0.0 || not (Float.is_finite at) then
        Error (Printf.sprintf "%s: negative time" (kind_name fault))
      else check_fault fault)
    (Ok ()) sched

(* When has every injected fault healed? Crashes heal at their matching
   recover event (infinity if never recovered — disables the liveness
   watchdog); window faults heal when their window closes. *)
let heal_time sched =
  let recover_at pred from =
    List.fold_left
      (fun acc { at; fault } ->
        if at >= from && pred fault then Float.min acc at else acc)
      infinity sched
  in
  List.fold_left
    (fun acc { at; fault } ->
      let healed =
        match fault with
        | Crash_node a ->
            recover_at
              (function
                | Recover_node b -> Topology.addr_equal a b | _ -> false)
              at
        | Crash_group g ->
            recover_at
              (function Recover_group g' -> g = g' | _ -> false)
              at
        | Recover_node _ | Recover_group _ -> at
        | Partition { for_s; _ }
        | Link_drop { for_s; _ }
        | Link_delay { for_s; _ }
        | Link_dup { for_s; _ }
        | Wan_degrade { for_s; _ }
        | Lan_degrade { for_s; _ }
        | Slow_cpu { for_s; _ } ->
            at +. for_s
      in
      Float.max acc healed)
    0.0 sched

let sorted sched =
  List.stable_sort (fun a b -> Float.compare a.at b.at) sched
