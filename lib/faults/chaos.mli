(** Seeded chaos fuzzer: random fault-schedule generation, campaign
    driving, and delta-debugging shrink of failing schedules.

    Everything is deterministic in the seed: the same seed against the
    same config and cluster spec generates a byte-identical schedule and
    a result-identical run, so a campaign failure is reproducible as
    [massbft drill --seed S --system SYS] (see {!repro_line}).

    The generator is system-aware: group crashes, WAN drops and
    partitions are only drawn for systems whose global phase retransmits
    (per-group Raft); it crashes at most f nodes per group and heals
    every fault it injects, so a generated schedule is always within the
    system's claimed fault tolerance and any invariant violation is a
    real bug. *)

val gen_schedule :
  Massbft_util.Rng.t ->
  cfg:Massbft.Config.t ->
  spec:Massbft_sim.Topology.spec ->
  duration:float ->
  Fault_spec.schedule
(** Draw a schedule of 2–6 faults landing in [0.5, 0.4*duration], all
    healed within a few seconds after. Times are millisecond-quantized
    so the text form round-trips exactly. *)

val gen_adversary :
  Massbft_util.Rng.t ->
  cfg:Massbft.Config.t ->
  spec:Massbft_sim.Topology.spec ->
  duration:float ->
  strategy:string ->
  Massbft_adversary.Adv_spec.plan * Fault_spec.schedule
(** Draw a concrete timed plan for one named strategy (a member of
    {!Massbft_adversary.Adv_spec.kind_names}), plus any trigger faults
    the strategy needs to bite (split-votes rides on a leader
    crash+recover). Plans compromise exactly one node per target group —
    within every group's tolerance — so a safety violation under a
    generated plan is a real bug. Raises [Invalid_argument] on an
    unknown strategy name. *)

val reconfig_kinds : string list
(** The reconfiguration campaign axis: ["node-join"], ["node-leave"],
    ["leader-move"], ["group-add"], ["group-remove"]. *)

val gen_reconfig :
  Massbft_util.Rng.t ->
  cfg:Massbft.Config.t ->
  spec:Massbft_sim.Topology.spec ->
  duration:float ->
  kind:string ->
  Massbft_reconfig.Reconfig_spec.plan * Fault_spec.schedule
(** Draw one membership-change scenario of the named kind plus its
    paired chaos: joins get a 50% chance of a mid-transfer crash of the
    joining hardware (exercising the fetch lane's stall watchdog, donor
    rotation and backoff), other kinds get light degradations. Fault
    addresses may refer to slots of the plan's *provisioned* topology;
    {!run_schedule} provisions before arming the injector. Raises
    [Invalid_argument] on an unknown kind, or when the cluster cannot
    host the scenario (node-leave needs a group of 5, group-remove
    needs 3 groups). *)

type outcome = {
  schedule : Fault_spec.schedule;
  adversary : Massbft_adversary.Adv_spec.plan;
  reconfig : Massbft_reconfig.Reconfig_spec.plan;
  violations : Invariants.violation list;
  unaccountable : Invariants.violation list;
      (** violations not backed by a verified conflicting-signed pair
          (without an adversary: all of them) *)
  evidence : Massbft_adversary.Evidence.pair list;
      (** every conflict the accountability log caught, violations or
          not *)
  executed : int;  (** entries executed across all groups *)
  injected : int;  (** fault events applied *)
  adv_injected : int;  (** messages the adversary interfered with *)
  epochs : int;  (** reconfiguration boundaries executed *)
  transfer_retries : int;  (** state-transfer stall recoveries *)
  ran_until : float;  (** simulated seconds *)
}

val run_schedule :
  ?duration:float ->
  ?liveness_bound_s:float ->
  ?trace:Massbft_trace.Trace.t ->
  ?registry:Massbft_obs.Registry.t ->
  ?adversary:Massbft_adversary.Adv_spec.plan ->
  ?reconfig:Massbft_reconfig.Reconfig_spec.plan ->
  ?domains:int ->
  spec:Massbft_sim.Topology.spec ->
  cfg:Massbft.Config.t ->
  Fault_spec.schedule ->
  outcome
(** Build a fresh deployment, arm the injector and the invariant
    checkers, and run for [duration] (default 10.0) simulated seconds —
    extended past the schedule's heal time when needed so the liveness
    watchdog gets a verdict. [liveness_bound_s] defaults to
    [max 3.0 (4 * election_timeout_s)]: post-heal recovery from a group
    outage legitimately spans several election timeouts (takeover,
    catch-up, transfer-back).

    [domains] (default 1, clamped to the group count) selects how many
    OCaml domains pump the per-group scheduler shards. Parallel runs
    poll the invariant checkers at the lookahead-window barriers
    instead of via in-run events, force [independent_stores], and
    reject [trace]/[registry]/[adversary] (single-writer structures the
    parallel driver cannot serialize); the verdicts match a sequential
    run of the same schedule.

    [reconfig] validates, provisions and arms a live-membership plan
    before the cluster starts (sequential mode only); the controller's
    epoch-aware end-of-run checks merge into [violations], and a join
    extends the heal horizon by a state-transfer allowance before the
    liveness watchdog starts judging. An empty or omitted plan changes
    nothing. *)

val failed : outcome -> bool

val accountable : outcome -> bool
(** No unaccountable violations: the run either upheld every invariant
    or pinned each violation on a provably-equivocating node via a
    verified conflicting-signed-message pair. The CI pass criterion for
    adversary campaigns. *)

val shrink : fails:('a list -> bool) -> 'a list -> 'a list
(** ddmin: a 1-minimal-ish sub-list still satisfying [fails] (dropping
    any tried chunk makes it pass). Returns the input unchanged if it
    does not fail. Works over fault schedules and adversary plans
    alike. *)

type drill_result = {
  seed : int64;
  system : Massbft.Config.system;
  strategy : string option;  (** adversary axis point, if any *)
  reconfig_kind : string option;  (** reconfiguration axis point, if any *)
  outcome : outcome;
  shrunk : Fault_spec.schedule option;
      (** minimal failing schedule, when the original failed *)
  shrunk_adversary : Massbft_adversary.Adv_spec.plan option;
      (** minimal failing adversary plan, when one was in play *)
}

val drill :
  ?duration:float ->
  ?liveness_bound_s:float ->
  ?trace:Massbft_trace.Trace.t ->
  ?registry:Massbft_obs.Registry.t ->
  ?shrink_failures:bool ->
  ?adversary:string ->
  ?reconfig:string ->
  ?domains:int ->
  spec:Massbft_sim.Topology.spec ->
  cfg:Massbft.Config.t ->
  seed:int64 ->
  unit ->
  drill_result
(** One fuzzing round: generate from [seed], run, and (by default)
    shrink on failure. With [adversary] (a strategy name) the round
    runs that strategy's generated plan plus its trigger faults instead
    of a random fault schedule; on failure both the plan and the
    schedule are ddmin-shrunk. With [reconfig] (a member of
    {!reconfig_kinds}) the round runs that membership-change scenario
    plus its paired chaos; the reconfiguration plan itself is the
    scenario's identity and is never shrunk. Both together drill
    Byzantine behaviour during a membership change. *)

type campaign_result = {
  total : int;
  results : drill_result list;  (** in run order *)
  failures : drill_result list;
}

val campaign :
  ?duration:float ->
  ?liveness_bound_s:float ->
  ?shrink_failures:bool ->
  ?systems:Massbft.Config.system list ->
  ?adversaries:string list ->
  ?reconfigs:string list ->
  ?on_run:(drill_result -> unit) ->
  ?domains:int ->
  spec:Massbft_sim.Topology.spec ->
  cfg:Massbft.Config.t ->
  seeds:int64 list ->
  unit ->
  campaign_result
(** Every system (default: all seven) times every seed — times every
    [adversaries] strategy and every [reconfigs] kind when those axes
    are given, overriding [cfg]'s system per run. [shrink_failures]
    defaults to false here — campaigns report; {!drill} reproduces and
    shrinks. *)

val repro_line :
  ?adversary:string ->
  ?reconfig:string ->
  ?domains:int ->
  seed:int64 ->
  system:Massbft.Config.system ->
  unit ->
  string
(** The one-liner that reproduces a campaign failure, carrying every
    axis the failing run used ([--domains], [--reconfig],
    [--adversary]). *)

val pp_drill : Format.formatter -> drill_result -> unit
