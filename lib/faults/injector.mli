(** Applies a {!Fault_spec.schedule} to a running deployment.

    Crash/recover events go through the engine (whose watchdogs own
    leader migration); link faults interpose on {!Topology.send}
    through the topology's fault hook; bandwidth/CPU degradations
    reconfigure the fabric and heal back to nominal when their window
    closes. All injections are ordinary simulator events armed up
    front, so a run replays bit-identically from the same seed and
    schedule — and with an empty schedule nothing at all is scheduled
    or installed. *)

type t

val create :
  ?trace:Massbft_trace.Trace.t ->
  ?registry:Massbft_obs.Registry.t ->
  spec:Massbft_sim.Topology.spec ->
  schedule:Fault_spec.schedule ->
  Massbft.Engine.t ->
  Massbft_sim.Sim.t ->
  Massbft_sim.Topology.t ->
  t
(** Validates the schedule against the deployment shape (raises
    [Invalid_argument] on a structural error). [trace] receives
    ["fault"]-category events: an instant per crash/recover, an open
    span over each windowed fault's apply→heal interval. [registry]
    receives the [massbft_faults_injected_total] counter family,
    labeled by fault kind. *)

val arm : t -> unit
(** Schedules every event of the schedule (installing the link-fault
    hook only if some link fault exists). Call after [Engine.start]
    and before running the simulation; raises on a second call. *)

val schedule : t -> Fault_spec.schedule
(** The validated, time-sorted schedule. *)

val injected_total : t -> int
(** Fault events applied so far. *)
