(** Aria deterministic concurrency control (Lu et al., VLDB 2020) — the
    execution engine the paper uses so that every node, given the same
    ordered stream of entries, computes the identical database state
    with no coordination.

    A batch executes in two phases: every transaction first runs against
    the same snapshot (reads see the pre-batch store plus the
    transaction's own writes), then reservations decide commits
    deterministically from batch positions alone:

    - standard rule: abort T iff raw(T) or waw(T);
    - with deterministic reordering ([`reorder`]): abort T iff waw(T) or
      (raw(T) and war(T)) — transactions with only one conflict
      direction are serialized logically instead of aborted.

    Conflict-aborted transactions are returned for re-execution in a
    later batch (the engine prepends them to the next entry). Logic
    aborts (e.g. TPC-C's 1 % invalid-item rollback, SmallBank overdraft
    refusals) are final. *)

module Txn = Massbft_workload.Txn

type outcome = {
  committed : Txn.t list;  (** in batch order *)
  conflicted : Txn.t list;  (** deterministically aborted; retry later *)
  logic_aborted : Txn.t list;  (** rolled back by their own logic *)
  reads : int;  (** total read operations executed *)
  writes : int;  (** total write operations executed *)
  effects : (string * string) list;
      (** every store write the batch performed, in application order —
          the batch's cumulative mutation of the store. A node holding
          an identical pre-batch store reaches the identical post-state
          by replaying these with {!apply_effects}, skipping
          re-execution; this is how replica stores under
          [independent_stores] avoid paying the full Aria pass per
          group. *)
}

val execute_batch :
  ?reorder:bool -> ?fallback:Txn.t list -> Kvstore.t -> Txn.t list -> outcome
(** Runs one batch to completion and applies the committed writes to the
    store. Deterministic: same store state + same batch (same order)
    gives the same outcome and post-state, regardless of platform.

    [fallback] carries transactions that already conflicted in an
    earlier batch: per Aria's deterministic fallback they execute
    serially, in list order, after the parallel phase — each sees the
    preceding ones' writes — and always commit (unless their own logic
    aborts). This bounds retries to one round and prevents hot-key
    livelock. *)

val apply_effects : Kvstore.t -> outcome -> unit
(** Replays [o.effects] onto [store]. Given the store state the batch
    originally executed against, this reproduces the post-batch store
    exactly (deterministic replication by write-set shipping). *)

val commit_rate : outcome -> float
(** committed / (committed + conflicted), 1.0 for empty batches. *)
