(** The in-memory database state: a hash table with lazy default
    materialization. The paper stores states in in-memory hash tables;
    here cold rows (e.g. SmallBank's million initial balances) are
    produced on first touch by an initializer instead of being
    physically preloaded, which preserves execution semantics while
    keeping simulations light (see DESIGN.md substitutions). *)

type t

val create : ?init:(string -> string option) -> unit -> t
(** [init key] supplies the initial value of a never-written key; [None]
    means absent. *)

val get : t -> string -> string option
val put : t -> string -> string -> unit

val size : t -> int
(** Number of materialized keys (written or faulted-in). *)

val copy_into : src:t -> dst:t -> unit
(** Overwrite [dst]'s materialized bindings with [src]'s (state transfer
    onto a joining node's store). Keys present only in [dst] are kept —
    callers transfer into a fresh store. *)

val fingerprint : t -> string
(** An order-insensitive digest of the materialized contents — equal
    fingerprints mean equal states. Used by tests to check that all
    nodes converge to identical databases (the paper's agreement
    property, observed at the state level). *)
