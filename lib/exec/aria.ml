module Txn = Massbft_workload.Txn

type outcome = {
  committed : Txn.t list;
  conflicted : Txn.t list;
  logic_aborted : Txn.t list;
  reads : int;
  writes : int;
  effects : (string * string) list;
}

(* Per-transaction read/write footprints are kept as prepend-only lists
   (newest first), not hash tables: the workloads touch a handful of
   keys per transaction (YCSB: one; TPC-C: tens), so a linear scan of a
   few cons cells beats two fresh hash tables per transaction — and the
   allocation rate matters beyond this module, because every minor GC
   is a stop-the-world rendezvous across the parallel driver's domains.
   A duplicated key in a list only re-checks the same reservation and
   re-reserves the same (key, pos) pair, so dedup is unnecessary for
   correctness. *)
type exec_record = {
  txn : Txn.t;
  pos : int;
  reads_l : string list;
  writes_l : (string * string) list;  (* newest first: head shadows tail *)
  logic_abort : bool;
}

(* Latest buffered write for [k], honoring shadowing (newest first). *)
let rec wfind k = function
  | [] -> None
  | (k', v) :: rest -> if String.equal k k' then Some v else wfind k rest

(* Apply oldest-first so the newest write to a key lands last. The
   recursion depth is the transaction's write count — tens at most.
   Every applied write is also pushed onto [effects] (newest first), so
   the batch's cumulative store mutation survives in the outcome: a
   replica holding an identical store can reach the identical post-state
   by replaying the effect list instead of re-running the batch. *)
let rec apply_writes store effects = function
  | [] -> ()
  | (k, v) :: rest ->
      apply_writes store effects rest;
      Kvstore.put store k v;
      effects := (k, v) :: !effects

let run_one store pos txn counters =
  let reads_l = ref [] in
  let writes_l = ref [] in
  let aborted = ref false in
  let ctx =
    {
      Txn.read =
        (fun k ->
          reads_l := k :: !reads_l;
          incr (fst counters);
          match wfind k !writes_l with
          | Some v -> Some v
          | None -> Kvstore.get store k);
      write =
        (fun k v ->
          incr (snd counters);
          writes_l := (k, v) :: !writes_l);
      abort = (fun () -> raise Txn.Logic_abort);
    }
  in
  (try txn.Txn.body ctx with Txn.Logic_abort -> aborted := true);
  { txn; pos; reads_l = !reads_l; writes_l = !writes_l; logic_abort = !aborted }

(* Reservation tables: key -> smallest batch position touching it
   (logic aborts hold no reservations: their effects vanish). One
   mutable table per batch instead of a persistent map rebuilt fold by
   fold. *)
let reserve tbl pos k =
  match Hashtbl.find_opt tbl k with
  | Some p when p <= pos -> ()
  | _ -> Hashtbl.replace tbl k pos

let conflicts_with reservations keys ~pos =
  List.exists
    (fun k ->
      match Hashtbl.find_opt reservations k with
      | Some p -> p < pos
      | None -> false)
    keys

let conflicts_with_w reservations writes ~pos =
  List.exists
    (fun (k, _) ->
      match Hashtbl.find_opt reservations k with
      | Some p -> p < pos
      | None -> false)
    writes

(* Aria's fallback lane: serial execution with immediate visibility;
   deterministic because the order is the list order. *)
let run_fallback store effects txns committed logic counters =
  List.iter
    (fun (txn : Txn.t) ->
      let writes_l = ref [] in
      let aborted = ref false in
      let ctx =
        {
          Txn.read =
            (fun k ->
              incr (fst counters);
              match wfind k !writes_l with
              | Some v -> Some v
              | None -> Kvstore.get store k);
          write =
            (fun k v ->
              incr (snd counters);
              writes_l := (k, v) :: !writes_l);
          abort = (fun () -> raise Txn.Logic_abort);
        }
      in
      (try txn.Txn.body ctx with Txn.Logic_abort -> aborted := true);
      if !aborted then logic := txn :: !logic
      else begin
        apply_writes store effects !writes_l;
        committed := txn :: !committed
      end)
    txns

let execute_batch ?(reorder = true) ?(fallback = []) store txns =
  let read_ops = ref 0 and write_ops = ref 0 in
  let counters = (read_ops, write_ops) in
  let records = List.mapi (fun pos txn -> run_one store pos txn counters) txns in
  let write_res = Hashtbl.create 64 in
  let read_res = Hashtbl.create 64 in
  List.iter
    (fun r ->
      if not r.logic_abort then begin
        List.iter (fun (k, _) -> reserve write_res r.pos k) r.writes_l;
        List.iter (fun k -> reserve read_res r.pos k) r.reads_l
      end)
    records;
  let committed = ref [] and conflicted = ref [] and logic = ref [] in
  let effects = ref [] in
  List.iter
    (fun r ->
      if r.logic_abort then logic := r.txn :: !logic
      else begin
        let waw = conflicts_with_w write_res r.writes_l ~pos:r.pos in
        let raw = conflicts_with write_res r.reads_l ~pos:r.pos in
        let war = conflicts_with_w read_res r.writes_l ~pos:r.pos in
        let abort = if reorder then waw || (raw && war) else waw || raw in
        if abort then conflicted := r.txn :: !conflicted
        else begin
          committed := r.txn :: !committed;
          apply_writes store effects r.writes_l
        end
      end)
    records;
  run_fallback store effects fallback committed logic counters;
  {
    committed = List.rev !committed;
    conflicted = List.rev !conflicted;
    logic_aborted = List.rev !logic;
    reads = !read_ops;
    writes = !write_ops;
    effects = List.rev !effects;
  }

let apply_effects store o =
  List.iter (fun (k, v) -> Kvstore.put store k v) o.effects

let commit_rate o =
  let c = List.length o.committed and a = List.length o.conflicted in
  if c + a = 0 then 1.0 else float_of_int c /. float_of_int (c + a)
