module Txn = Massbft_workload.Txn
module SMap = Map.Make (String)

type outcome = {
  committed : Txn.t list;
  conflicted : Txn.t list;
  logic_aborted : Txn.t list;
  reads : int;
  writes : int;
}

type exec_record = {
  txn : Txn.t;
  pos : int;
  read_set : (string, unit) Hashtbl.t;
  write_buf : (string, string) Hashtbl.t;
  logic_abort : bool;
}

let run_one store pos txn counters =
  let read_set = Hashtbl.create 8 in
  let write_buf = Hashtbl.create 8 in
  let aborted = ref false in
  let ctx =
    {
      Txn.read =
        (fun k ->
          Hashtbl.replace read_set k ();
          incr (fst counters);
          match Hashtbl.find_opt write_buf k with
          | Some v -> Some v
          | None -> Kvstore.get store k);
      write =
        (fun k v ->
          incr (snd counters);
          Hashtbl.replace write_buf k v);
      abort = (fun () -> raise Txn.Logic_abort);
    }
  in
  (try txn.Txn.body ctx with Txn.Logic_abort -> aborted := true);
  { txn; pos; read_set; write_buf; logic_abort = !aborted }

let reserve records get_keys =
  (* key -> smallest batch position touching it (logic aborts hold no
     reservations: their effects vanish). *)
  List.fold_left
    (fun acc r ->
      if r.logic_abort then acc
      else
        Hashtbl.fold
          (fun k () acc ->
            match SMap.find_opt k acc with
            | Some p when p <= r.pos -> acc
            | _ -> SMap.add k r.pos acc)
          (get_keys r) acc)
    SMap.empty records

let conflicts_with reservations keys ~pos =
  Hashtbl.fold
    (fun k () acc ->
      acc
      ||
      match SMap.find_opt k reservations with
      | Some p -> p < pos
      | None -> false)
    keys false

(* Aria's fallback lane: serial execution with immediate visibility;
   deterministic because the order is the list order. *)
let run_fallback store txns committed logic counters =
  List.iter
    (fun (txn : Txn.t) ->
      let write_buf = Hashtbl.create 8 in
      let aborted = ref false in
      let ctx =
        {
          Txn.read =
            (fun k ->
              incr (fst counters);
              match Hashtbl.find_opt write_buf k with
              | Some v -> Some v
              | None -> Kvstore.get store k);
          write =
            (fun k v ->
              incr (snd counters);
              Hashtbl.replace write_buf k v);
          abort = (fun () -> raise Txn.Logic_abort);
        }
      in
      (try txn.Txn.body ctx with Txn.Logic_abort -> aborted := true);
      if !aborted then logic := txn :: !logic
      else begin
        Hashtbl.iter (fun k v -> Kvstore.put store k v) write_buf;
        committed := txn :: !committed
      end)
    txns

let execute_batch ?(reorder = true) ?(fallback = []) store txns =
  let read_ops = ref 0 and write_ops = ref 0 in
  let counters = (read_ops, write_ops) in
  let records = List.mapi (fun pos txn -> run_one store pos txn counters) txns in
  let write_res = reserve records (fun r -> r.write_buf |> fun wb ->
      (* view the write buffer as a key set *)
      let keys = Hashtbl.create (Hashtbl.length wb) in
      Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) wb;
      keys)
  in
  let read_res = reserve records (fun r -> r.read_set) in
  let committed = ref [] and conflicted = ref [] and logic = ref [] in
  List.iter
    (fun r ->
      if r.logic_abort then logic := r.txn :: !logic
      else begin
        let write_keys = Hashtbl.create (Hashtbl.length r.write_buf) in
        Hashtbl.iter (fun k _ -> Hashtbl.replace write_keys k ()) r.write_buf;
        let waw = conflicts_with write_res write_keys ~pos:r.pos in
        let raw = conflicts_with write_res r.read_set ~pos:r.pos in
        let war = conflicts_with read_res write_keys ~pos:r.pos in
        let abort = if reorder then waw || (raw && war) else waw || raw in
        if abort then conflicted := r.txn :: !conflicted
        else begin
          committed := r.txn :: !committed;
          Hashtbl.iter (fun k v -> Kvstore.put store k v) r.write_buf
        end
      end)
    records;
  run_fallback store fallback committed logic counters;
  {
    committed = List.rev !committed;
    conflicted = List.rev !conflicted;
    logic_aborted = List.rev !logic;
    reads = !read_ops;
    writes = !write_ops;
  }

let commit_rate o =
  let c = List.length o.committed and a = List.length o.conflicted in
  if c + a = 0 then 1.0 else float_of_int c /. float_of_int (c + a)
