(** The hash-chained ledger: each group produces a subchain of blocks,
    and the consensus layer merges them into a single globally ordered
    chain (paper §VI, Implementation). Blocks carry metadata and a
    payload digest; chaining uses SHA-256. *)

type block = {
  height : int;  (** position in this chain, from 0 *)
  gid : int;  (** proposing group *)
  seq : int;  (** the entry's local sequence number in its group *)
  txn_count : int;
  payload_digest : string;  (** digest of the entry's batch *)
  prev_hash : string;
  block_hash : string;
}

type t

val create : unit -> t

val genesis_hash : string

val append : t -> gid:int -> seq:int -> txn_count:int -> payload_digest:string -> block
(** Extends the chain; the block hash covers every field including
    [prev_hash]. *)

val height : t -> int
(** Number of blocks appended. *)

val head_hash : t -> string
(** [genesis_hash] when empty. *)

val blocks : t -> block list
(** Oldest first. *)

val blocks_from : t -> height:int -> block list
(** The blocks at positions [height ..], oldest first — O(number
    returned), so an incremental reader (the cross-chain invariant
    poller) pays only for the growth since its last call. *)

val verify : t -> bool
(** Recomputes every hash and link; [false] if any block was tampered
    with. *)

val equal_prefix : t -> t -> int
(** Length of the common prefix of two chains — used by tests to show
    all nodes build the same global ledger. *)
