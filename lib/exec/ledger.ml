module Sha256 = Massbft_crypto.Sha256

type block = {
  height : int;
  gid : int;
  seq : int;
  txn_count : int;
  payload_digest : string;
  prev_hash : string;
  block_hash : string;
}

type t = { mutable rev_blocks : block list; mutable len : int }

let genesis_hash = Sha256.digest "massbft-genesis"

let create () = { rev_blocks = []; len = 0 }

let hash_block ~height ~gid ~seq ~txn_count ~payload_digest ~prev_hash =
  Sha256.digest
    (Printf.sprintf "blk|%d|%d|%d|%d|%s|%s" height gid seq txn_count
       payload_digest prev_hash)

let head_hash t =
  match t.rev_blocks with [] -> genesis_hash | b :: _ -> b.block_hash

let append t ~gid ~seq ~txn_count ~payload_digest =
  let height = t.len in
  let prev_hash = head_hash t in
  let block_hash =
    hash_block ~height ~gid ~seq ~txn_count ~payload_digest ~prev_hash
  in
  let b = { height; gid; seq; txn_count; payload_digest; prev_hash; block_hash } in
  t.rev_blocks <- b :: t.rev_blocks;
  t.len <- t.len + 1;
  b

let height t = t.len
let blocks t = List.rev t.rev_blocks

let blocks_from t ~height =
  (* rev_blocks holds the newest first: the suffix from [height] is its
     first [len - height] elements, reversed — O(new blocks), so a
     poller re-reading only the growth stays cheap. *)
  let rec take acc k l =
    if k = 0 then acc
    else match l with [] -> acc | b :: rest -> take (b :: acc) (k - 1) rest
  in
  if height >= t.len then [] else take [] (t.len - height) t.rev_blocks

let verify t =
  let rec go prev = function
    | [] -> true
    | (b : block) :: rest ->
        String.equal b.prev_hash prev
        && String.equal b.block_hash
             (hash_block ~height:b.height ~gid:b.gid ~seq:b.seq
                ~txn_count:b.txn_count ~payload_digest:b.payload_digest
                ~prev_hash:b.prev_hash)
        && go b.block_hash rest
  in
  go genesis_hash (blocks t)

let equal_prefix a b =
  let rec go n = function
    | ba :: ra, bb :: rb when String.equal ba.block_hash bb.block_hash ->
        go (n + 1) (ra, rb)
    | _ -> n
  in
  go 0 (blocks a, blocks b)
