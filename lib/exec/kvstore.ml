type t = { data : (string, string) Hashtbl.t; init : string -> string option }

let create ?(init = fun _ -> None) () = { data = Hashtbl.create 1024; init }

let get t key =
  match Hashtbl.find_opt t.data key with
  | Some v -> Some v
  | None -> (
      match t.init key with
      | Some v ->
          (* Fault the default in so later fingerprints see it. *)
          Hashtbl.replace t.data key v;
          Some v
      | None -> None)

let put t key value = Hashtbl.replace t.data key value
let size t = Hashtbl.length t.data

let copy_into ~src ~dst =
  Hashtbl.iter (fun k v -> Hashtbl.replace dst.data k v) src.data

let fingerprint t =
  (* XOR of per-binding hashes: order-insensitive and incremental enough
     for test-sized stores. *)
  let acc = Bytes.make 32 '\x00' in
  Hashtbl.iter
    (fun k v ->
      let h = Massbft_crypto.Sha256.digest (k ^ "\x00" ^ v) in
      for i = 0 to 31 do
        Bytes.set acc i
          (Char.chr (Char.code (Bytes.get acc i) lxor Char.code h.[i]))
      done)
    t.data;
  Massbft_crypto.Sha256.digest_bytes acc
