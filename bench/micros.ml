(* The named bechamel micro-benchmarks for every substrate hot path
   (SHA-256, HMAC, Merkle trees, GF arithmetic, Reed-Solomon coding
   over both GF(256) and GF(65536), transfer plans, chunker/rebuild,
   VTS ordering, Aria execution, PBFT rounds, and the simulator core
   including a schedule/cancel/poll churn case and the parallel
   driver's barrier machinery).

   A library rather than part of the bench executable so the CLI's
   [massbft bench] subcommand can run the same suite — the regression
   gate must measure exactly the benchmarks the committed baselines
   were built from. *)

open Bechamel
open Toolkit
module Sha256 = Massbft_crypto.Sha256
module Hmac = Massbft_crypto.Hmac
module Merkle = Massbft_crypto.Merkle
module Gf256 = Massbft_codec.Gf256
module Gf65536 = Massbft_codec.Gf65536
module Erasure = Massbft_codec.Erasure
module Transfer_plan = Massbft.Transfer_plan
module Chunker = Massbft.Chunker
module Rebuild = Massbft.Rebuild
module Orderer = Massbft.Orderer
module Types = Massbft.Types
module Aria = Massbft_exec.Aria
module Kvstore = Massbft_exec.Kvstore
module W = Massbft_workload.Workload
module Pbft = Massbft_consensus.Pbft
module Sim = Massbft_sim.Sim
module Bench_report = Massbft_harness.Bench_report

(* ------------------------------------------------------------------ *)
(* Micro-benchmark subjects                                            *)
(* ------------------------------------------------------------------ *)

let payload_4k = String.init 4096 (fun i -> Char.chr (i land 0xff))
let entry_100k = String.init 100_000 (fun i -> Char.chr ((i * 31) land 0xff))
let plan_4_7 = Transfer_plan.generate ~n1:4 ~n2:7
let plan_7_7 = Transfer_plan.generate ~n1:7 ~n2:7

let bench_sha256 =
  Test.make ~name:"sha256/4KiB" (Staged.stage (fun () -> Sha256.digest payload_4k))

let bench_hmac =
  Test.make ~name:"hmac/4KiB"
    (Staged.stage (fun () -> Hmac.mac ~key:"bench-key" payload_4k))

let merkle_leaves = List.init 28 (fun i -> Printf.sprintf "chunk-%d" i)
let merkle_tree = Merkle.build merkle_leaves
let merkle_root = Merkle.root merkle_tree
let merkle_proof = Merkle.prove merkle_tree 13

let bench_merkle_build =
  Test.make ~name:"merkle/build-28"
    (Staged.stage (fun () -> Merkle.build merkle_leaves))

let bench_merkle_verify =
  Test.make ~name:"merkle/verify"
    (Staged.stage (fun () ->
         Merkle.verify ~root:merkle_root ~leaf:"chunk-13" merkle_proof))

let merkle_mp = Merkle.prove_many merkle_tree [ 0; 1; 2; 3; 4; 5; 6 ]
let merkle_mp_leaves = List.init 7 (fun i -> (i, Printf.sprintf "chunk-%d" i))

let bench_merkle_multiproof =
  Test.make ~name:"merkle/multiproof-verify-7of28"
    (Staged.stage (fun () ->
         assert
           (Merkle.verify_many ~root:merkle_root ~leaf_count:28
              ~leaves:merkle_mp_leaves merkle_mp)))

let gf_src = Bytes.of_string payload_4k
let gf_dst = Bytes.create 4096

let bench_gf_mul_slice =
  Test.make ~name:"gf256/mul_slice-4KiB"
    (Staged.stage (fun () -> Gf256.mul_slice 0x57 gf_src gf_dst))

let bench_gf_xor_slice =
  (* Coefficient 1 takes the word-wide XOR fast path. *)
  Test.make ~name:"gf256/xor_slice-4KiB"
    (Staged.stage (fun () -> Gf256.mul_slice 1 gf_src gf_dst))

let bench_gf16_mul_slice =
  Test.make ~name:"gf65536/mul_slice-4KiB"
    (Staged.stage (fun () -> Gf65536.mul_slice 0x1234 gf_src gf_dst))

let bench_gf16_xor_slice =
  (* Coefficient 1 takes the word-wide XOR fast path. *)
  Test.make ~name:"gf65536/xor_slice-4KiB"
    (Staged.stage (fun () -> Gf65536.mul_slice 1 gf_src gf_dst))

(* GF(256) coding: 28 total shards, the paper's 3x(7+...) regime. *)
let bench_rs_encode =
  Test.make ~name:"rs/gf8-encode-13+15-100KB"
    (Staged.stage (fun () -> Erasure.encode ~data:13 ~parity:15 entry_100k))

let rs_chunks =
  Array.to_list
    (Array.mapi (fun i c -> (i, c)) (Erasure.encode ~data:13 ~parity:15 entry_100k))

let rs_tail = List.filteri (fun i _ -> i >= 15) rs_chunks

(* Warm the decode path once during setup: the decode-matrix inversion
   is computed once per row pattern and cached (as in production, where
   a rebuild decodes many entries with the same surviving-shard set),
   so the micro measures steady-state slice throughput, not the
   one-time O(data^3) inversion. *)
let () =
  match Erasure.decode ~data:13 ~parity:15 rs_tail with
  | Ok _ -> ()
  | Error e -> failwith e

let bench_rs_decode =
  Test.make ~name:"rs/gf8-decode-from-parity-100KB"
    (Staged.stage (fun () ->
         match Erasure.decode ~data:13 ~parity:15 rs_tail with
         | Ok _ -> ()
         | Error e -> failwith e))

(* GF(65536) coding: > 255 total shards forces the 16-bit field. *)
let bench_rs16_encode =
  Test.make ~name:"rs/gf16-encode-180+120-100KB"
    (Staged.stage (fun () -> Erasure.encode ~data:180 ~parity:120 entry_100k))

let rs16_chunks =
  Array.to_list
    (Array.mapi (fun i c -> (i, c)) (Erasure.encode ~data:180 ~parity:120 entry_100k))

let rs16_tail = List.filteri (fun i _ -> i >= 120) rs16_chunks

(* Same steady-state warm-up as the gf8 decode micro; the 180x180
   GF(2^16) inversion is far too large to amortize inside a sample. *)
let () =
  match Erasure.decode ~data:180 ~parity:120 rs16_tail with
  | Ok _ -> ()
  | Error e -> failwith e

let bench_rs16_decode =
  Test.make ~name:"rs/gf16-decode-from-parity-100KB"
    (Staged.stage (fun () ->
         match Erasure.decode ~data:180 ~parity:120 rs16_tail with
         | Ok _ -> ()
         | Error e -> failwith e))

let bench_plan =
  Test.make ~name:"transfer_plan/generate-40x39"
    (Staged.stage (fun () -> Transfer_plan.generate ~n1:40 ~n2:39))

let bench_chunker =
  Test.make ~name:"chunker/encode-4to7-100KB"
    (Staged.stage (fun () -> Chunker.encode ~plan:plan_4_7 ~entry:entry_100k))

let chunker_chunks = Chunker.encode ~plan:plan_7_7 ~entry:entry_100k

let bench_rebuild =
  Test.make ~name:"rebuild/100KB-7to7"
    (Staged.stage (fun () ->
         let rb =
           Rebuild.create ~plan:plan_7_7
             ~validate:(fun e -> String.equal e entry_100k)
             ()
         in
         Array.iter (fun c -> ignore (Rebuild.add rb c)) chunker_chunks;
         assert (Rebuild.result rb <> None)))

let bench_orderer =
  Test.make ~name:"orderer/1000-timestamps"
    (Staged.stage (fun () ->
         let executed = ref 0 in
         let o = Orderer.create ~ng:3 ~on_execute:(fun _ -> incr executed) in
         let clocks = [| 0; 0; 0 |] in
         for s = 1 to 250 do
           for g = 0 to 2 do
             clocks.(g) <- s;
             for j = 0 to 2 do
               if j <> g then
                 Orderer.on_timestamp o ~from_gid:j
                   ~eid:{ Types.gid = g; seq = s }
                   ~ts:clocks.(j)
             done
           done
         done;
         assert (!executed > 500)))

let aria_batch =
  let w = W.create ~scale:0.01 W.Ycsb_a ~seed:7L in
  List.init 500 (fun _ -> W.next w)

let bench_aria =
  Test.make ~name:"aria/500-txn-batch"
    (Staged.stage (fun () ->
         let store = Kvstore.create () in
         ignore (Aria.execute_batch store aria_batch)))

let bench_pbft =
  Test.make ~name:"pbft/normal-case-n7"
    (Staged.stage (fun () ->
         (* A full three-phase decision over an in-memory bus. *)
         let n = 7 in
         let queue = Queue.create () in
         let decided = ref 0 in
         let replicas = Array.make n None in
         Array.iteri
           (fun me _ ->
             replicas.(me) <-
               Some
                 (Pbft.create
                    { Pbft.n; me; skip_prepare = false }
                    {
                      Pbft.send = (fun dst m -> Queue.push (me, dst, m) queue);
                      decide = (fun _ -> incr decided);
                    }))
           replicas;
         Pbft.propose (Option.get replicas.(0)) ~seq:1 ~digest:"d";
         while not (Queue.is_empty queue) do
           let src, dst, m = Queue.pop queue in
           Pbft.handle (Option.get replicas.(dst)) ~from:src m
         done;
         assert (!decided = n)))

let bench_sim =
  Test.make ~name:"sim/100k-events"
    (Staged.stage (fun () ->
         let sim = Sim.create () in
         let count = ref 0 in
         let rec chain i =
           if i < 100_000 then
             ignore
               (Sim.after sim 0.001 (fun () ->
                    incr count;
                    chain (i + 10)))
         in
         for k = 0 to 9 do
           chain k
         done;
         Sim.run_until_idle sim ();
         assert (!count = 100_000)))

let bench_sim_churn =
  (* The timeout-churn pattern that motivated the lazy-deletion queue:
     schedule a wave of timers, cancel 90% of them (polling the live
     count after every cancel, as the obs sampler does each tick), and
     drain the survivors. Before the O(1) counter + compaction this was
     quadratic in the wave size. *)
  Test.make ~name:"sim/churn-10k-cancel+poll"
    (Staged.stage (fun () ->
         let sim = Sim.create () in
         let fired = ref 0 in
         let timers =
           Array.init 10_000 (fun i ->
               Sim.at sim
                 (1.0 +. (float_of_int i *. 1e-4))
                 (fun () -> incr fired))
         in
         let acc = ref 0 in
         Array.iteri
           (fun i h ->
             if i mod 10 <> 0 then begin
               Sim.cancel h;
               acc := !acc + Sim.pending sim
             end)
           timers;
         Sim.run_until_idle sim ();
         assert (!fired = 1_000 && Sim.pending sim = 0);
         ignore !acc))

let bench_shard_barrier =
  (* The parallel driver's fixed per-window cost, isolated: two shards
     ping-ponging one cross-shard message per window through the
     mailbox path, so each window carries minimal real work and the
     run measures domain spawn + barrier + inbox-drain machinery. 50
     windows of 10 ms lookahead per run. *)
  Test.make ~name:"sim/shard-barrier-2x50w"
    (Staged.stage (fun () ->
         let sim = Sim.create ~shards:2 ~lookahead:0.01 () in
         let s0 = Sim.shard sim 0 and s1 = Sim.shard sim 1 in
         let count = ref 0 in
         let rec ping me peer () =
           incr count;
           (* 12 ms > the 10 ms lookahead, so the post always lands
              beyond the current window's end as [post] requires. *)
           Sim.post peer (Sim.now me +. 0.012) (ping peer me)
         in
         ignore (Sim.at s0 0.0 (ping s0 s1));
         ignore (Sim.at s1 0.0 (ping s1 s0));
         Sim.run_parallel sim ~domains:2 ~until:0.5 ();
         assert (!count >= 80)))

let micro_tests =
  [
    bench_sha256; bench_hmac; bench_merkle_build; bench_merkle_verify;
    bench_merkle_multiproof; bench_gf_mul_slice; bench_gf_xor_slice;
    bench_gf16_mul_slice; bench_gf16_xor_slice; bench_rs_encode;
    bench_rs_decode;
    bench_rs16_encode; bench_rs16_decode; bench_plan;
    bench_chunker; bench_rebuild; bench_orderer; bench_aria; bench_pbft;
    bench_sim; bench_sim_churn; bench_shard_barrier;
  ]

let run_micro ?(print = true) ~quick () =
  if print then print_endline "=== micro-benchmarks (bechamel) ===";
  let cfg =
    if quick then Benchmark.cfg ~limit:25 ~quota:(Time.second 0.05) ()
    else Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let test = Test.make_grouped ~name:"massbft" ~fmt:"%s %s" micro_tests in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let estimates =
    Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
    |> List.sort compare
    |> List.filter_map (fun (name, result) ->
           match Analyze.OLS.estimates result with
           | Some [ est ] ->
               if print then Printf.printf "  %-40s %12.1f ns/run\n" name est;
               Some { Bench_report.m_name = name; ns_per_run = est }
           | _ ->
               if print then Printf.printf "  %-40s (no estimate)\n" name;
               None)
  in
  if print then print_newline ();
  estimates
