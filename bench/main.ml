(* The benchmark suite:

   1. Named bechamel micro-benchmarks for every substrate hot path
      (see micros.ml; shared with the [massbft bench] subcommand).
   2. Macro benchmarks: one full engine run per system on YCSB-A over
      the nationwide cluster, reporting both the simulated-side results
      and the wall-clock cost of producing them.
   3. (--figures) The figure harness: one experiment per table/figure
      of the paper's evaluation (see EXPERIMENTS.md).

   Flags:
     --quick          fast smoke pass (reduced bechamel quota, short
                      macro windows at 1% scale); MASSBFT_BENCH_QUICK=1
                      does the same
     --json [FILE]    write the micro+macro baseline to FILE (default
                      BENCH_<date>.json) in the Bench_report schema
     --check FILE     compare this run's micro results against the
                      baseline FILE and exit non-zero on regressions
     --tolerance PCT  per-benchmark tolerance for --check (default 25)
     --prof FILE      self-profile the MassBFT macro row and write the
                      profiler's JSON report to FILE; the row's
                      host_phases breakdown lands in --json output too
     --figures        also run the figure harness *)

module Config = Massbft.Config
module Bench_report = Massbft_harness.Bench_report
module Bench_check = Massbft_harness.Bench_check
module Prof = Massbft_prof.Prof
module Prof_export = Massbft_prof.Prof_export

(* ------------------------------------------------------------------ *)
(* Macro benchmarks                                                    *)
(* ------------------------------------------------------------------ *)

let run_macros ~quick ~prof_file () =
  Printf.printf "=== macro benchmarks (YCSB-A, nationwide, %s mode) ===\n"
    (if quick then "quick" else "full");
  let macros =
    List.map
      (fun system ->
        (* Only the MassBFT row is profiled (and only when asked): the
           profiler is free of per-event cost but the unprofiled rows
           keep the baseline comparison maximally conservative. *)
        let prof =
          if prof_file <> None && system = Config.Massbft then
            Some (Prof.create ())
          else None
        in
        let m = Bench_report.run_macro ~quick ?prof ~system () in
        Printf.printf
          "  %-9s %8.2f ktps  %6.2fs wall  %5.2f sim-s/wall-s  %8.0f txns/wall-s\n%!"
          m.Bench_report.system m.Bench_report.throughput_ktps
          m.Bench_report.wall_s m.Bench_report.sim_s_per_wall_s
          m.Bench_report.committed_txns_per_wall_s;
        (match (prof, prof_file) with
        | Some p, Some file ->
            Prof_export.write_json ~windows:true p file;
            Printf.printf "  wrote host profile to %s\n%!" file;
            print_string (Prof_export.text (Prof.report p))
        | _ -> ());
        m)
      Config.all_systems
  in
  print_newline ();
  macros

(* ------------------------------------------------------------------ *)
(* Sharded-scheduler scaling table                                     *)
(* ------------------------------------------------------------------ *)

let run_scaling ~quick () =
  Printf.printf
    "=== scheduler scaling (MassBFT YCSB-A, groups x domains, %s mode) ===\n"
    (if quick then "quick" else "full");
  Printf.printf "  host domains available: %d\n"
    (Domain.recommended_domain_count ());
  Printf.printf "  %-7s %-8s %9s %16s %15s\n" "groups" "domains" "wall_s"
    "sim_s/wall_s" "committed_txns";
  let groups_list, domains_list =
    if quick then ([ 3 ], [ 1; 2 ]) else ([ 3; 5 ], [ 1; 2; 4 ])
  in
  let rows =
    Bench_report.run_scaling ~quick ~groups_list ~domains_list
      ~on_row:(fun (s : Bench_report.scaling) ->
        Printf.printf "  %-7d %-8d %9.2f %16.3f %15d\n%!" s.sc_groups
          s.sc_domains s.sc_wall_s s.sc_sim_s_per_wall_s s.sc_committed_txns)
      ()
  in
  print_newline ();
  rows

(* ------------------------------------------------------------------ *)
(* Figure harness                                                      *)
(* ------------------------------------------------------------------ *)

let run_figures ~quick =
  Printf.printf "=== figure harness (%s mode) ===\n\n"
    (if quick then "quick" else "full");
  List.iter
    (fun (id, _, (f : ?quick:bool -> unit -> Massbft_harness.Figures.figure)) ->
      let t0 = Unix.gettimeofday () in
      let fig = f ~quick () in
      Format.printf "%a" Massbft_harness.Figures.pp_figure fig;
      Format.printf "[%s took %.1fs wall-clock]@.@." id
        (Unix.gettimeofday () -. t0))
    Massbft_harness.Figures.all

let () =
  let argv = Array.to_list Sys.argv in
  let quick =
    List.mem "--quick" argv
    ||
    match Sys.getenv_opt "MASSBFT_BENCH_QUICK" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false
  in
  let figures = List.mem "--figures" argv in
  let flag_value name =
    let rec find = function
      | flag :: next :: _
        when flag = name && String.length next > 0 && next.[0] <> '-' ->
          Some next
      | _ :: rest -> find rest
      | [] -> None
    in
    find argv
  in
  let json_file =
    if not (List.mem "--json" argv) then None
    else
      match flag_value "--json" with
      | Some f -> Some f
      | None ->
          let tm = Unix.localtime (Unix.time ()) in
          Some
            (Printf.sprintf "BENCH_%04d-%02d-%02d.json" (tm.Unix.tm_year + 1900)
               (tm.Unix.tm_mon + 1) tm.Unix.tm_mday)
  in
  let check_file =
    if not (List.mem "--check" argv) then None
    else
      match flag_value "--check" with
      | Some f -> Some f
      | None ->
          prerr_endline "bench: --check requires a baseline file";
          exit 2
  in
  let tolerance =
    match flag_value "--tolerance" with
    | None -> Bench_check.default_tolerance
    | Some s -> (
        match float_of_string_opt s with
        | Some pct when pct > 0.0 -> pct /. 100.0
        | _ ->
            prerr_endline "bench: --tolerance expects a positive percentage";
            exit 2)
  in
  let prof_file = flag_value "--prof" in
  (* The scaling table runs first: its rows compare drivers against
     each other, and measuring them from the pristine process keeps
     them free of the heap growth the micro and macro sections leave
     behind (a per-row compaction recovers most but not all of it). *)
  let scaling = run_scaling ~quick () in
  let micros = Massbft_bench.Micros.run_micro ~quick () in
  let macros = run_macros ~quick ~prof_file () in
  (match json_file with
  | None -> ()
  | Some file ->
      let tm = Unix.localtime (Unix.time ()) in
      let date =
        Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
          (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
      in
      let doc =
        Bench_report.to_json ~date
          ~mode:(if quick then "quick" else "full")
          ~scaling ~micros ~macros ()
      in
      let oc = open_out file in
      output_string oc doc;
      close_out oc;
      Printf.printf "wrote %s\n" file);
  if figures then run_figures ~quick;
  match check_file with
  | None -> ()
  | Some file ->
      let baseline = Bench_check.load_baseline file in
      let current =
        List.map
          (fun m -> (m.Bench_report.m_name, m.Bench_report.ns_per_run))
          micros
      in
      let result = Bench_check.compare_micros ~tolerance ~baseline ~current () in
      print_string (Bench_check.render ~baseline result);
      if not (Bench_check.passed result) then exit 1
